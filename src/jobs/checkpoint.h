// Binary persistence for the AutoML job service (src/jobs).
//
// Two record kinds share one framing ("AHGJ" magic, u32 format version,
// u32 record kind, payload):
//   * SearchJobSpec — the immutable definition of a search job, written
//     once at submission.
//   * SearchJobCheckpoint — the cumulative progress of a run, rewritten
//     atomically (tmp + rename) at every checkpoint boundary.
//
// Everything determinism-critical is stored in raw little-endian binary:
// doubles round-trip bit-for-bit (no text formatting), so a resumed run
// continues from exactly the values the interrupted run computed. This is
// the foundation of the service's bitwise resume guarantee (DESIGN.md).
#ifndef AUTOHENS_JOBS_CHECKPOINT_H_
#define AUTOHENS_JOBS_CHECKPOINT_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/proxy_eval.h"
#include "core/search_gradient.h"
#include "models/model_zoo.h"
#include "tasks/train_node.h"
#include "util/status.h"

namespace ahg::jobs {

// How a search job fixes the ensemble configuration. kHierarchical skips
// the search stage entirely: members take cyclic depths 1..L and every
// architecture gets uniform beta (the paper's plain hierarchical baseline).
enum class JobAlgo { kHierarchical = 0, kAdaptive = 1, kGradient = 2 };

const char* JobAlgoName(JobAlgo algo);

// Immutable definition of a search job. The graph itself is NOT part of the
// spec — the driver owns dataset loading and hands the job a JobEnv; the
// free-form `dataset` tag lets a restarted driver re-associate jobs with
// their data.
struct SearchJobSpec {
  std::string job_id;
  std::string dataset;
  JobAlgo algo = JobAlgo::kGradient;
  std::vector<CandidateSpec> candidates;
  int pool_size = 3;  // N architectures kept after proxy ranking
  int k = 3;          // K members per architecture
  // Proxy-evaluation knobs (core/proxy_eval.h semantics).
  double proxy_dataset_ratio = 0.3;
  int proxy_bagging = 2;
  double proxy_model_ratio = 0.5;
  double proxy_train_fraction = 0.6;
  double proxy_val_fraction = 0.2;
  int proxy_num_threads = 1;
  // Shared training protocol (proxy probes, search, final members). The
  // cancel pointer is runtime-only and never serialized.
  TrainConfig train;
  // Gradient-search knobs.
  int gradient_update_every = 1;
  double gradient_arch_learning_rate = 3e-4;
  int gradient_max_epochs = 20;
  int gradient_patience = 5;
  int gradient_checkpoint_every = 4;  // epochs between state snapshots
  // Adaptive-search knobs (Eqn 8).
  double adaptive_epsilon = 3.0;
  double adaptive_gamma = 8000.0;
  double adaptive_lambda = 5.0;
  uint64_t seed = 1;
  // 0 = unlimited. When exceeded at a stage boundary the job degrades
  // deterministically (see SearchJob) instead of failing.
  double time_budget_seconds = 0.0;
  // Registry version to publish the winning model under; 0 disables
  // publication (the ensemble artifact is still written to the store).
  int publish_version = 0;
};

// Cumulative progress of a search job. Fields fill in stage order; a stage
// consults only the fields before it, so a checkpoint taken at any boundary
// resumes cleanly. All units recorded here are independently seeded (proxy
// candidates, adaptive probes, final members) or full-state snapshots (the
// gradient search), which is what makes the resume bitwise faithful.
struct SearchJobCheckpoint {
  // Stage 1: proxy ranking. Scores of completed candidates by pool index.
  std::map<int, CandidateScore> proxy_scores;
  bool pool_done = false;
  std::vector<CandidateSpec> pool;  // the selected N architectures
  // Stage 2a: adaptive probes, keyed (pool index, depth) -> val accuracy.
  std::map<std::pair<int, int>, double> adaptive_probes;
  // Stage 2b: gradient search full-state snapshot.
  bool has_gradient_state = false;
  GradientSearchState gradient_state;
  bool search_done = false;
  std::vector<std::vector<int>> layers;
  std::vector<double> beta;
  // Stage 3: final training. Best-validation weight snapshots of completed
  // members, keyed by plan index (TrainedEnsemble::PlanMembers order).
  std::map<int, std::vector<Matrix>> member_params;
  bool train_done = false;
};

// --- Served-task jobs (Tables VIII/IX through the same machinery) ---

enum class TaskKind { kLinkPrediction = 0, kGraphClassification = 1 };

const char* TaskKindName(TaskKind kind);

// Grid search over candidate encoders for a served downstream task. The
// winning model (best validation AUC / accuracy, first index on ties) is
// persisted as winner.ahgm and served by the scorers in served_tasks.h.
struct TaskJobSpec {
  std::string job_id;
  std::string dataset;
  TaskKind kind = TaskKind::kLinkPrediction;
  std::vector<CandidateSpec> candidates;
  TrainConfig train;
  uint64_t seed = 1;
};

// Per-candidate progress: candidates are independently seeded, so each
// checkpointed unit is skipped verbatim on resume and the winner file is
// bitwise identical to an uninterrupted run's.
struct TaskJobCheckpoint {
  std::map<int, double> scores;  // candidate index -> validation metric
  int best_index = -1;
  ModelConfig best_config;
  std::vector<Matrix> best_params;
  bool done = false;
};

Status SaveTaskSpec(const std::string& path, const TaskJobSpec& spec);
StatusOr<TaskJobSpec> LoadTaskSpec(const std::string& path);
Status SaveTaskCheckpoint(const std::string& path,
                          const TaskJobCheckpoint& checkpoint);
StatusOr<TaskJobCheckpoint> LoadTaskCheckpoint(const std::string& path);

// Spec I/O. SaveSpec overwrites; LoadSpec validates magic/version/kind and
// tensor framing, failing with InvalidArgument on corruption.
Status SaveSpec(const std::string& path, const SearchJobSpec& spec);
StatusOr<SearchJobSpec> LoadSpec(const std::string& path);

// Checkpoint I/O. SaveCheckpoint writes to `path + ".tmp"` then renames, so
// a reader (or a resumed run after SIGKILL mid-write) never observes a
// half-written checkpoint.
Status SaveCheckpoint(const std::string& path,
                      const SearchJobCheckpoint& checkpoint);
StatusOr<SearchJobCheckpoint> LoadCheckpoint(const std::string& path);

}  // namespace ahg::jobs

#endif  // AUTOHENS_JOBS_CHECKPOINT_H_
