// In-process job queue + single worker thread for the AutoML job service.
//
// Submit() persists the spec into the JobStore (durable before it is
// runnable) and enqueues the id; the worker pops ids FIFO and drives
// SearchJob::Run with the queue's JobEnv. One worker is deliberate: search
// jobs parallelize internally (proxy candidates fan out on the training
// thread pool), so job-level concurrency would just oversubscribe cores.
//
// Lifecycle surface:
//   * Cancel(id) flips the running job's CancelToken (it pauses at the next
//     unit boundary, state kCheckpointed, resumable) or unqueues a waiting
//     job (terminal kCancelled).
//   * Resume(id) re-enqueues a kCheckpointed job.
//   * Stop() cancels the in-flight job and joins the worker; whatever was
//     running lands checkpointed on disk, so a new queue (or process) picks
//     it up with RecoverAndResume().
//
// Metrics: "jobs.submitted", "jobs.completed", gauges "jobs.queue_depth"
// and "jobs.running" on top of SearchJob's per-stage counters.
#ifndef AUTOHENS_JOBS_JOB_QUEUE_H_
#define AUTOHENS_JOBS_JOB_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "jobs/job_store.h"
#include "jobs/search_job.h"
#include "obs/metrics.h"
#include "util/cancel.h"

namespace ahg::jobs {

class JobQueue {
 public:
  // `env.cancel` is overwritten per job with the queue's own token; all
  // other JobEnv fields are used as given and must outlive the queue.
  JobQueue(const JobStore* store, JobEnv env);
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  // Persists the spec (JobStore::CreateJob) and enqueues it.
  Status Submit(const SearchJobSpec& spec);

  // Re-enqueues an existing kQueued / kCheckpointed job.
  Status Resume(const std::string& job_id);

  // Flips dead-worker kRunning jobs to kCheckpointed (JobStore recovery)
  // and enqueues every resumable job. Returns the ids enqueued.
  StatusOr<std::vector<std::string>> RecoverAndResume();

  // Pause/cancel: a running job checkpoints and pauses at its next unit
  // boundary; a queued job is removed and marked terminal kCancelled.
  Status Cancel(const std::string& job_id);

  // Blocks until the queue is empty and no job is running.
  void WaitIdle();

  // Outcome of a finished (published / checkpointed / failed) run, in
  // arrival order. Missing id -> NotFound.
  StatusOr<SearchJobOutcome> Outcome(const std::string& job_id) const;

  const JobStore* store() const { return store_; }

 private:
  void WorkerLoop();

  const JobStore* store_;
  JobEnv env_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // signals the worker
  std::condition_variable idle_cv_;   // signals WaitIdle
  std::deque<std::string> pending_;
  std::string running_;               // empty when idle
  CancelToken run_cancel_;
  bool stop_ = false;
  std::map<std::string, SearchJobOutcome> outcomes_;
  std::map<std::string, Status> run_errors_;

  obs::Counter* const m_submitted_;
  obs::Counter* const m_completed_;
  obs::Gauge* const m_queue_depth_;
  obs::Gauge* const m_running_;

  std::thread worker_;
};

}  // namespace ahg::jobs

#endif  // AUTOHENS_JOBS_JOB_QUEUE_H_
