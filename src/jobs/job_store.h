// Durable on-disk home of the AutoML job service. One directory per job:
//
//   <root>/<job_id>/
//     spec.bin        immutable SearchJobSpec (jobs/checkpoint.h framing)
//     state.tsv       lifecycle: status, attempts, checkpoints, message
//     checkpoint.bin  cumulative run progress, atomically rewritten
//     ensemble/       the published TrainedEnsemble artifact (manifest.tsv
//                     + member_<i>.ahgm) — the byte-for-byte identity target
//                     of the resume-determinism tests
//
// state.tsv is deliberately text (human-greppable) because it carries no
// determinism-critical doubles; everything the resumed computation feeds on
// lives in the binary spec/checkpoint records.
#ifndef AUTOHENS_JOBS_JOB_STORE_H_
#define AUTOHENS_JOBS_JOB_STORE_H_

#include <string>
#include <vector>

#include "jobs/checkpoint.h"
#include "util/status.h"

namespace ahg::jobs {

enum class JobStatus {
  kQueued = 0,
  kRunning = 1,
  kCheckpointed = 2,  // interrupted (cancel, budget pause, dead worker)
  kPublished = 3,     // terminal success
  kFailed = 4,        // terminal failure
  kCancelled = 5,     // terminal: cancelled before any checkpoint existed
};

const char* JobStatusName(JobStatus status);

struct JobState {
  JobStatus status = JobStatus::kQueued;
  int attempts = 0;               // Run() invocations so far
  int64_t checkpoints_written = 0;  // lifetime checkpoint count
  int published_version = 0;      // registry version on success
  std::string message;            // last status detail (single line)
};

class JobStore {
 public:
  explicit JobStore(std::string root) : root_(std::move(root)) {}

  JobStore(const JobStore&) = delete;
  JobStore& operator=(const JobStore&) = delete;

  // Creates the root directory (idempotent).
  Status Init() const;

  // Writes spec.bin + a kQueued state. Fails if the job already exists.
  Status CreateJob(const SearchJobSpec& spec) const;

  StatusOr<SearchJobSpec> LoadJobSpec(const std::string& job_id) const;
  StatusOr<JobState> LoadState(const std::string& job_id) const;
  // Atomic (tmp + rename) so a concurrent reader never sees a torn state.
  Status SaveState(const std::string& job_id, const JobState& state) const;

  Status SaveJobCheckpoint(const std::string& job_id,
                           const SearchJobCheckpoint& checkpoint) const;
  StatusOr<SearchJobCheckpoint> LoadJobCheckpoint(
      const std::string& job_id) const;
  bool HasCheckpoint(const std::string& job_id) const;

  // Served-task jobs (Tables VIII/IX) share the directory layout and
  // lifecycle but keep their own spec/checkpoint records (task_spec.bin,
  // task_checkpoint.bin, winner.ahgm).
  Status CreateTaskJob(const TaskJobSpec& spec) const;
  StatusOr<TaskJobSpec> LoadTaskJobSpec(const std::string& job_id) const;
  Status SaveTaskJobCheckpoint(const std::string& job_id,
                               const TaskJobCheckpoint& checkpoint) const;
  StatusOr<TaskJobCheckpoint> LoadTaskJobCheckpoint(
      const std::string& job_id) const;
  bool HasTaskCheckpoint(const std::string& job_id) const;
  std::string WinnerPath(const std::string& job_id) const;

  std::string JobDir(const std::string& job_id) const;
  std::string EnsembleDir(const std::string& job_id) const;

  // Job ids with a spec.bin under the root, sorted.
  std::vector<std::string> ListJobs() const;

  // Dead-worker recovery: a job whose state is still kRunning was owned by
  // a worker that died without a terminal transition (e.g. SIGKILL). Flips
  // such jobs to kCheckpointed (resumable) and returns their ids.
  StatusOr<std::vector<std::string>> RecoverInterrupted() const;

  const std::string& root() const { return root_; }

 private:
  std::string StatePath(const std::string& job_id) const;

  const std::string root_;
};

}  // namespace ahg::jobs

#endif  // AUTOHENS_JOBS_JOB_STORE_H_
