// Served downstream tasks driven through the job machinery: the paper's
// edge-prediction (Table VIII) and graph-classification (Table IX) settings
// run as durable TaskJobs — a grid search over candidate encoders with one
// checkpoint per candidate — and the winning model is persisted as
// winner.ahgm and served by the scorers below.
//
// The resume guarantee matches SearchJob's: candidates are independently
// seeded, completed candidates replay from stored bits, so a killed-and-
// resumed job writes a winner file byte-for-byte identical to an
// uninterrupted run's.
#ifndef AUTOHENS_JOBS_SERVED_TASKS_H_
#define AUTOHENS_JOBS_SERVED_TASKS_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph_set.h"
#include "graph/split.h"
#include "jobs/job_store.h"
#include "models/model.h"
#include "tasks/train_graph.h"
#include "tasks/train_link.h"
#include "util/cancel.h"
#include "util/status.h"

namespace ahg::jobs {

struct TaskEnv {
  // Exactly one of the two data bindings must match the spec's kind.
  const LinkSplit* link = nullptr;  // kLinkPrediction
  const GraphSet* graph_set = nullptr;  // kGraphClassification
  const GraphSetSplit* graph_split = nullptr;
  const CancelToken* cancel = nullptr;
  // Fault injection as in JobEnv: SIGKILL after the N-th checkpoint write.
  int kill_after_checkpoints = 0;
};

struct TaskJobOutcome {
  JobStatus status = JobStatus::kFailed;
  bool resumed = false;
  int best_index = -1;
  std::string best_name;
  double best_metric = 0.0;  // validation AUC (link) or accuracy (graph)
  std::string winner_path;
  int checkpoints_written = 0;
};

class TaskJob {
 public:
  TaskJob(const JobStore* store, std::string job_id)
      : store_(store), job_id_(std::move(job_id)) {}

  // Runs (or resumes) the grid search; kPublished once winner.ahgm is
  // written, kCheckpointed when cancelled mid-search (resumable).
  StatusOr<TaskJobOutcome> Run(const TaskEnv& env);

 private:
  const JobStore* store_;
  const std::string job_id_;
};

// Serves a link-prediction winner: embeds the graph with the stored encoder
// (eval mode, no dropout) and scores node pairs with the dot-product
// decoder, exactly reproducing the training-time validation scores.
class LinkScorer {
 public:
  // Empty until Load() succeeds (public default construction is what lets
  // StatusOr<LinkScorer> hold the error arm).
  LinkScorer() = default;

  static StatusOr<LinkScorer> Load(const std::string& winner_path);

  std::vector<double> Score(const Graph& graph,
                            const std::vector<NodePair>& pairs) const;

  const ModelConfig& config() const { return config_; }

 private:
  ModelConfig config_;
  std::vector<Matrix> params_;
};

// Serves a graph-classification winner: pooled readout + classifier head
// over a whole GraphSet, returning per-graph class probabilities.
class GraphSetScorer {
 public:
  // Empty until Load() succeeds (see LinkScorer).
  GraphSetScorer() = default;

  static StatusOr<GraphSetScorer> Load(const std::string& winner_path,
                                       int num_classes);

  Matrix PredictProba(const GraphSet& set) const;

  const ModelConfig& config() const { return config_; }

 private:
  ModelConfig config_;
  std::vector<Matrix> params_;  // model weights + head W + head b
  int num_classes_ = 0;
};

}  // namespace ahg::jobs

#endif  // AUTOHENS_JOBS_SERVED_TASKS_H_
