#include "jobs/job_queue.h"

#include <algorithm>

#include "obs/trace.h"

namespace ahg::jobs {

JobQueue::JobQueue(const JobStore* store, JobEnv env)
    : store_(store),
      env_(std::move(env)),
      m_submitted_(obs::MetricsRegistry::Global().GetCounter(
          "jobs.submitted")),
      m_completed_(obs::MetricsRegistry::Global().GetCounter(
          "jobs.completed")),
      m_queue_depth_(obs::MetricsRegistry::Global().GetGauge(
          "jobs.queue_depth")),
      m_running_(obs::MetricsRegistry::Global().GetGauge("jobs.running")) {
  worker_ = std::thread([this] { WorkerLoop(); });
}

JobQueue::~JobQueue() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    run_cancel_.Cancel();  // pause the in-flight job at its next boundary
  }
  work_cv_.notify_all();
  worker_.join();
}

Status JobQueue::Submit(const SearchJobSpec& spec) {
  Status s = store_->CreateJob(spec);
  if (!s.ok()) return s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(spec.job_id);
    m_queue_depth_->Set(static_cast<double>(pending_.size()));
  }
  m_submitted_->Increment();
  work_cv_.notify_one();
  return Status::OK();
}

Status JobQueue::Resume(const std::string& job_id) {
  auto state = store_->LoadState(job_id);
  if (!state.ok()) return state.status();
  if (state.value().status != JobStatus::kQueued &&
      state.value().status != JobStatus::kCheckpointed) {
    return Status::InvalidArgument(
        "job " + job_id + " is not resumable (" +
        JobStatusName(state.value().status) + ")");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_ == job_id ||
        std::find(pending_.begin(), pending_.end(), job_id) !=
            pending_.end()) {
      return Status::InvalidArgument("job " + job_id + " is already active");
    }
    pending_.push_back(job_id);
    m_queue_depth_->Set(static_cast<double>(pending_.size()));
  }
  work_cv_.notify_one();
  return Status::OK();
}

StatusOr<std::vector<std::string>> JobQueue::RecoverAndResume() {
  auto recovered = store_->RecoverInterrupted();
  if (!recovered.ok()) return recovered.status();
  std::vector<std::string> enqueued;
  for (const std::string& job_id : store_->ListJobs()) {
    auto state = store_->LoadState(job_id);
    if (!state.ok()) return state.status();
    if (state.value().status != JobStatus::kQueued &&
        state.value().status != JobStatus::kCheckpointed) {
      continue;
    }
    Status s = Resume(job_id);
    if (!s.ok()) return s;
    enqueued.push_back(job_id);
  }
  return enqueued;
}

Status JobQueue::Cancel(const std::string& job_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_ == job_id) {
      run_cancel_.Cancel();
      return Status::OK();
    }
    auto it = std::find(pending_.begin(), pending_.end(), job_id);
    if (it != pending_.end()) {
      pending_.erase(it);
      m_queue_depth_->Set(static_cast<double>(pending_.size()));
      auto state = store_->LoadState(job_id);
      if (!state.ok()) return state.status();
      JobState next = state.value();
      next.status = JobStatus::kCancelled;
      next.message = "cancelled while queued";
      return store_->SaveState(job_id, next);
    }
  }
  return Status::NotFound("job " + job_id + " is not queued or running");
}

void JobQueue::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_.empty() && running_.empty(); });
}

StatusOr<SearchJobOutcome> JobQueue::Outcome(const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = run_errors_.find(job_id); it != run_errors_.end()) {
    return it->second;
  }
  if (auto it = outcomes_.find(job_id); it != outcomes_.end()) {
    return it->second;
  }
  return Status::NotFound("no completed run for job " + job_id);
}

void JobQueue::WorkerLoop() {
  for (;;) {
    std::string job_id;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      if (stop_) return;
      job_id = pending_.front();
      pending_.pop_front();
      m_queue_depth_->Set(static_cast<double>(pending_.size()));
      running_ = job_id;
      run_cancel_.Reset();
      m_running_->Set(1.0);
    }
    AHG_TRACE_SPAN("jobs/worker_run");
    JobEnv env = env_;
    env.cancel = &run_cancel_;
    SearchJob job(store_, job_id);
    StatusOr<SearchJobOutcome> outcome = job.Run(env);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (outcome.ok()) {
        outcomes_[job_id] = std::move(outcome.value());
        run_errors_.erase(job_id);
      } else {
        run_errors_[job_id] = outcome.status();
      }
      running_.clear();
      m_running_->Set(0.0);
      m_completed_->Increment();
    }
    idle_cv_.notify_all();
  }
}

}  // namespace ahg::jobs
