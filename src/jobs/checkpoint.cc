#include "jobs/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace ahg::jobs {
namespace {

constexpr char kMagic[4] = {'A', 'H', 'G', 'J'};
constexpr uint32_t kFormatVersion = 1;
constexpr uint32_t kKindSpec = 1;
constexpr uint32_t kKindCheckpoint = 2;
constexpr uint32_t kKindTaskSpec = 3;
constexpr uint32_t kKindTaskCheckpoint = 4;

// Hard caps on untrusted framing, mirroring io/model_store: corruption must
// fail with InvalidArgument before any allocation, never with a bad_alloc.
constexpr uint64_t kMaxTensorDim = 1u << 27;
constexpr uint64_t kMaxTensorElements = 1u << 28;
constexpr uint64_t kMaxCount = 1u << 20;
constexpr uint64_t kMaxStringBytes = 1u << 20;

class Writer {
 public:
  explicit Writer(std::ofstream& out) : out_(out) {}

  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Bool(bool v) { U32(v ? 1 : 0); }

  void Str(const std::string& s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }

  void Mat(const Matrix& m) {
    U32(static_cast<uint32_t>(m.rows()));
    U32(static_cast<uint32_t>(m.cols()));
    Raw(m.data(), m.size() * sizeof(double));
  }

  void MatVec(const std::vector<Matrix>& ms) {
    U64(ms.size());
    for (const Matrix& m : ms) Mat(m);
  }

  void ModelCfg(const ModelConfig& c) {
    U32(static_cast<uint32_t>(c.family));
    I32(c.in_dim);
    I32(c.hidden_dim);
    I32(c.num_layers);
    F64(c.dropout);
    I32(c.heads);
    F64(c.attention_slope);
    F64(c.teleport);
    F64(c.gcnii_alpha);
    F64(c.gcnii_lambda);
    I32(c.poly_order);
    U64(c.seed);
  }

  void TrainCfg(const TrainConfig& c) {
    I32(c.max_epochs);
    I32(c.patience);
    F64(c.learning_rate);
    F64(c.weight_decay);
    F64(c.lr_decay);
    I32(c.lr_decay_every);
    U64(c.seed);
    I32(c.num_threads);
    Bool(c.pooling);
    Bool(c.fusion);
  }

  void Candidate(const CandidateSpec& c) {
    Str(c.name);
    ModelCfg(c.config);
  }

  void Score(const CandidateScore& s) {
    Str(s.name);
    ModelCfg(s.config);
    ModelCfg(s.original_config);
    F64(s.mean_val_accuracy);
    F64(s.stddev);
    F64(s.seconds);
  }

  void Rng(const RngState& s) {
    for (uint64_t w : s.s) U64(w);
    Bool(s.has_spare_normal);
    F64(s.spare_normal);
  }

  void Adam(const AdamState& s) {
    MatVec(s.m);
    MatVec(s.v);
    I64(s.step);
    F64(s.learning_rate);
  }

  void GradientState(const GradientSearchState& s) {
    I32(s.epoch);
    MatVec(s.weight_values);
    MatVec(s.arch_values);
    Adam(s.weight_opt);
    Adam(s.arch_opt);
    Rng(s.dropout_rng);
    F64(s.best_val);
    Mat(s.best_beta_raw);
    MatVec(s.best_alphas);
    I32(s.epochs_since_best);
  }

  bool good() const { return out_.good(); }

 private:
  void Raw(const void* p, size_t n) {
    out_.write(reinterpret_cast<const char*>(p),
               static_cast<std::streamsize>(n));
  }

  std::ofstream& out_;
};

class Reader {
 public:
  explicit Reader(std::ifstream& in) : in_(in) {
    in_.seekg(0, std::ios::end);
    file_size_ = static_cast<uint64_t>(in_.tellg());
    in_.seekg(0, std::ios::beg);
  }

  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool I32(int* v) {
    int32_t x = 0;
    if (!Raw(&x, sizeof(x))) return false;
    *v = static_cast<int>(x);
    return true;
  }
  bool I64(int64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Bool(bool* v) {
    uint32_t x = 0;
    if (!U32(&x)) return false;
    *v = x != 0;
    return true;
  }

  bool Str(std::string* s) {
    uint64_t n = 0;
    if (!U64(&n) || n > kMaxStringBytes || !Fits(n)) return false;
    s->resize(n);
    return Raw(s->data(), n);
  }

  bool Mat(Matrix* m) {
    uint32_t rows = 0, cols = 0;
    if (!U32(&rows) || !U32(&cols)) return false;
    if (rows > kMaxTensorDim || cols > kMaxTensorDim) return false;
    const uint64_t elements = static_cast<uint64_t>(rows) * cols;
    if (elements > kMaxTensorElements || !Fits(elements * sizeof(double))) {
      return false;
    }
    *m = Matrix(static_cast<int>(rows), static_cast<int>(cols));
    return Raw(m->data(), elements * sizeof(double));
  }

  bool MatVec(std::vector<Matrix>* ms) {
    uint64_t n = 0;
    if (!U64(&n) || n > kMaxCount) return false;
    ms->resize(n);
    for (auto& m : *ms) {
      if (!Mat(&m)) return false;
    }
    return true;
  }

  bool ModelCfg(ModelConfig* c) {
    uint32_t family = 0;
    if (!U32(&family)) return false;
    c->family = static_cast<ModelFamily>(family);
    return I32(&c->in_dim) && I32(&c->hidden_dim) && I32(&c->num_layers) &&
           F64(&c->dropout) && I32(&c->heads) && F64(&c->attention_slope) &&
           F64(&c->teleport) && F64(&c->gcnii_alpha) &&
           F64(&c->gcnii_lambda) && I32(&c->poly_order) && U64(&c->seed);
  }

  bool TrainCfg(TrainConfig* c) {
    return I32(&c->max_epochs) && I32(&c->patience) &&
           F64(&c->learning_rate) && F64(&c->weight_decay) &&
           F64(&c->lr_decay) && I32(&c->lr_decay_every) && U64(&c->seed) &&
           I32(&c->num_threads) && Bool(&c->pooling) && Bool(&c->fusion);
  }

  bool Candidate(CandidateSpec* c) {
    return Str(&c->name) && ModelCfg(&c->config);
  }

  bool Score(CandidateScore* s) {
    return Str(&s->name) && ModelCfg(&s->config) &&
           ModelCfg(&s->original_config) && F64(&s->mean_val_accuracy) &&
           F64(&s->stddev) && F64(&s->seconds);
  }

  bool Rng(RngState* s) {
    for (uint64_t& w : s->s) {
      if (!U64(&w)) return false;
    }
    return Bool(&s->has_spare_normal) && F64(&s->spare_normal);
  }

  bool Adam(AdamState* s) {
    return MatVec(&s->m) && MatVec(&s->v) && I64(&s->step) &&
           F64(&s->learning_rate);
  }

  bool GradientState(GradientSearchState* s) {
    return I32(&s->epoch) && MatVec(&s->weight_values) &&
           MatVec(&s->arch_values) && Adam(&s->weight_opt) &&
           Adam(&s->arch_opt) && Rng(&s->dropout_rng) && F64(&s->best_val) &&
           Mat(&s->best_beta_raw) && MatVec(&s->best_alphas) &&
           I32(&s->epochs_since_best);
  }

  bool Count(uint64_t* n) { return U64(n) && *n <= kMaxCount; }

 private:
  bool Raw(void* p, size_t n) {
    in_.read(reinterpret_cast<char*>(p), static_cast<std::streamsize>(n));
    return in_.good();
  }

  bool Fits(uint64_t bytes) {
    const uint64_t offset = static_cast<uint64_t>(in_.tellg());
    return offset <= file_size_ && bytes <= file_size_ - offset;
  }

  std::ifstream& in_;
  uint64_t file_size_ = 0;
};

Status OpenForRecord(const std::string& path, uint32_t kind,
                     std::ofstream* out) {
  out->open(path, std::ios::binary | std::ios::trunc);
  if (!out->is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  out->write(kMagic, sizeof(kMagic));
  Writer w(*out);
  w.U32(kFormatVersion);
  w.U32(kind);
  return Status::OK();
}

Status CheckRecord(std::ifstream& in, const std::string& path, uint32_t kind) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + " is not an AHGJ file");
  }
  Reader r(in);
  // Reader's constructor rewinds; skip the magic again.
  in.seekg(sizeof(kMagic), std::ios::beg);
  uint32_t version = 0, got_kind = 0;
  if (!r.U32(&version) || version != kFormatVersion) {
    return Status::InvalidArgument("unsupported AHGJ version in " + path);
  }
  if (!r.U32(&got_kind) || got_kind != kind) {
    return Status::InvalidArgument("wrong AHGJ record kind in " + path);
  }
  return Status::OK();
}

}  // namespace

const char* TaskKindName(TaskKind kind) {
  switch (kind) {
    case TaskKind::kLinkPrediction:
      return "link_prediction";
    case TaskKind::kGraphClassification:
      return "graph_classification";
  }
  return "unknown";
}

Status SaveTaskSpec(const std::string& path, const TaskJobSpec& spec) {
  std::ofstream out;
  Status s = OpenForRecord(path, kKindTaskSpec, &out);
  if (!s.ok()) return s;
  Writer w(out);
  w.Str(spec.job_id);
  w.Str(spec.dataset);
  w.U32(static_cast<uint32_t>(spec.kind));
  w.U64(spec.candidates.size());
  for (const CandidateSpec& c : spec.candidates) w.Candidate(c);
  w.TrainCfg(spec.train);
  w.U64(spec.seed);
  if (!w.good()) return Status::IOError("short write to " + path);
  return Status::OK();
}

StatusOr<TaskJobSpec> LoadTaskSpec(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  Status s = CheckRecord(in, path, kKindTaskSpec);
  if (!s.ok()) return s;
  Reader r(in);
  in.seekg(sizeof(kMagic) + 2 * sizeof(uint32_t), std::ios::beg);
  TaskJobSpec spec;
  uint32_t kind = 0;
  uint64_t num_candidates = 0;
  bool ok = r.Str(&spec.job_id) && r.Str(&spec.dataset) && r.U32(&kind) &&
            r.Count(&num_candidates);
  if (ok) {
    spec.kind = static_cast<TaskKind>(kind);
    spec.candidates.resize(num_candidates);
    for (auto& c : spec.candidates) {
      if (!r.Candidate(&c)) {
        ok = false;
        break;
      }
    }
  }
  ok = ok && r.TrainCfg(&spec.train) && r.U64(&spec.seed);
  if (!ok) {
    return Status::InvalidArgument("truncated or corrupt task spec " + path);
  }
  return spec;
}

Status SaveTaskCheckpoint(const std::string& path,
                          const TaskJobCheckpoint& checkpoint) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out;
    Status s = OpenForRecord(tmp, kKindTaskCheckpoint, &out);
    if (!s.ok()) return s;
    Writer w(out);
    w.U64(checkpoint.scores.size());
    for (const auto& [index, score] : checkpoint.scores) {
      w.I32(index);
      w.F64(score);
    }
    w.I32(checkpoint.best_index);
    w.ModelCfg(checkpoint.best_config);
    w.MatVec(checkpoint.best_params);
    w.Bool(checkpoint.done);
    if (!w.good()) return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

StatusOr<TaskJobCheckpoint> LoadTaskCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  Status s = CheckRecord(in, path, kKindTaskCheckpoint);
  if (!s.ok()) return s;
  Reader r(in);
  in.seekg(sizeof(kMagic) + 2 * sizeof(uint32_t), std::ios::beg);
  TaskJobCheckpoint ckpt;
  uint64_t n = 0;
  const auto fail = [&path] {
    return Status::InvalidArgument("truncated or corrupt task checkpoint " +
                                   path);
  };
  if (!r.Count(&n)) return fail();
  for (uint64_t i = 0; i < n; ++i) {
    int index = 0;
    double score = 0.0;
    if (!r.I32(&index) || !r.F64(&score)) return fail();
    ckpt.scores[index] = score;
  }
  if (!r.I32(&ckpt.best_index) || !r.ModelCfg(&ckpt.best_config) ||
      !r.MatVec(&ckpt.best_params) || !r.Bool(&ckpt.done)) {
    return fail();
  }
  return ckpt;
}

const char* JobAlgoName(JobAlgo algo) {
  switch (algo) {
    case JobAlgo::kHierarchical:
      return "hierarchical";
    case JobAlgo::kAdaptive:
      return "adaptive";
    case JobAlgo::kGradient:
      return "gradient";
  }
  return "unknown";
}

Status SaveSpec(const std::string& path, const SearchJobSpec& spec) {
  std::ofstream out;
  Status s = OpenForRecord(path, kKindSpec, &out);
  if (!s.ok()) return s;
  Writer w(out);
  w.Str(spec.job_id);
  w.Str(spec.dataset);
  w.U32(static_cast<uint32_t>(spec.algo));
  w.U64(spec.candidates.size());
  for (const CandidateSpec& c : spec.candidates) w.Candidate(c);
  w.I32(spec.pool_size);
  w.I32(spec.k);
  w.F64(spec.proxy_dataset_ratio);
  w.I32(spec.proxy_bagging);
  w.F64(spec.proxy_model_ratio);
  w.F64(spec.proxy_train_fraction);
  w.F64(spec.proxy_val_fraction);
  w.I32(spec.proxy_num_threads);
  w.TrainCfg(spec.train);
  w.I32(spec.gradient_update_every);
  w.F64(spec.gradient_arch_learning_rate);
  w.I32(spec.gradient_max_epochs);
  w.I32(spec.gradient_patience);
  w.I32(spec.gradient_checkpoint_every);
  w.F64(spec.adaptive_epsilon);
  w.F64(spec.adaptive_gamma);
  w.F64(spec.adaptive_lambda);
  w.U64(spec.seed);
  w.F64(spec.time_budget_seconds);
  w.I32(spec.publish_version);
  if (!w.good()) return Status::IOError("short write to " + path);
  return Status::OK();
}

StatusOr<SearchJobSpec> LoadSpec(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  Status s = CheckRecord(in, path, kKindSpec);
  if (!s.ok()) return s;
  Reader r(in);
  in.seekg(sizeof(kMagic) + 2 * sizeof(uint32_t), std::ios::beg);
  SearchJobSpec spec;
  uint32_t algo = 0;
  uint64_t num_candidates = 0;
  bool ok = r.Str(&spec.job_id) && r.Str(&spec.dataset) && r.U32(&algo) &&
            r.Count(&num_candidates);
  if (ok) {
    spec.algo = static_cast<JobAlgo>(algo);
    spec.candidates.resize(num_candidates);
    for (auto& c : spec.candidates) {
      if (!r.Candidate(&c)) {
        ok = false;
        break;
      }
    }
  }
  ok = ok && r.I32(&spec.pool_size) && r.I32(&spec.k) &&
       r.F64(&spec.proxy_dataset_ratio) && r.I32(&spec.proxy_bagging) &&
       r.F64(&spec.proxy_model_ratio) && r.F64(&spec.proxy_train_fraction) &&
       r.F64(&spec.proxy_val_fraction) && r.I32(&spec.proxy_num_threads) &&
       r.TrainCfg(&spec.train) && r.I32(&spec.gradient_update_every) &&
       r.F64(&spec.gradient_arch_learning_rate) &&
       r.I32(&spec.gradient_max_epochs) && r.I32(&spec.gradient_patience) &&
       r.I32(&spec.gradient_checkpoint_every) &&
       r.F64(&spec.adaptive_epsilon) && r.F64(&spec.adaptive_gamma) &&
       r.F64(&spec.adaptive_lambda) && r.U64(&spec.seed) &&
       r.F64(&spec.time_budget_seconds) && r.I32(&spec.publish_version);
  if (!ok) return Status::InvalidArgument("truncated or corrupt spec " + path);
  return spec;
}

Status SaveCheckpoint(const std::string& path,
                      const SearchJobCheckpoint& checkpoint) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out;
    Status s = OpenForRecord(tmp, kKindCheckpoint, &out);
    if (!s.ok()) return s;
    Writer w(out);
    w.U64(checkpoint.proxy_scores.size());
    for (const auto& [index, score] : checkpoint.proxy_scores) {
      w.I32(index);
      w.Score(score);
    }
    w.Bool(checkpoint.pool_done);
    w.U64(checkpoint.pool.size());
    for (const CandidateSpec& c : checkpoint.pool) w.Candidate(c);
    w.U64(checkpoint.adaptive_probes.size());
    for (const auto& [key, acc] : checkpoint.adaptive_probes) {
      w.I32(key.first);
      w.I32(key.second);
      w.F64(acc);
    }
    w.Bool(checkpoint.has_gradient_state);
    if (checkpoint.has_gradient_state) {
      w.GradientState(checkpoint.gradient_state);
    }
    w.Bool(checkpoint.search_done);
    w.U64(checkpoint.layers.size());
    for (const auto& row : checkpoint.layers) {
      w.U64(row.size());
      for (int depth : row) w.I32(depth);
    }
    w.U64(checkpoint.beta.size());
    for (double b : checkpoint.beta) w.F64(b);
    w.U64(checkpoint.member_params.size());
    for (const auto& [index, params] : checkpoint.member_params) {
      w.I32(index);
      w.MatVec(params);
    }
    w.Bool(checkpoint.train_done);
    if (!w.good()) return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

StatusOr<SearchJobCheckpoint> LoadCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  Status s = CheckRecord(in, path, kKindCheckpoint);
  if (!s.ok()) return s;
  Reader r(in);
  in.seekg(sizeof(kMagic) + 2 * sizeof(uint32_t), std::ios::beg);
  SearchJobCheckpoint ckpt;
  const auto fail = [&path] {
    return Status::InvalidArgument("truncated or corrupt checkpoint " + path);
  };
  uint64_t n = 0;
  if (!r.Count(&n)) return fail();
  for (uint64_t i = 0; i < n; ++i) {
    int index = 0;
    CandidateScore score;
    if (!r.I32(&index) || !r.Score(&score)) return fail();
    ckpt.proxy_scores[index] = std::move(score);
  }
  if (!r.Bool(&ckpt.pool_done) || !r.Count(&n)) return fail();
  ckpt.pool.resize(n);
  for (auto& c : ckpt.pool) {
    if (!r.Candidate(&c)) return fail();
  }
  if (!r.Count(&n)) return fail();
  for (uint64_t i = 0; i < n; ++i) {
    int pool_index = 0, depth = 0;
    double acc = 0.0;
    if (!r.I32(&pool_index) || !r.I32(&depth) || !r.F64(&acc)) return fail();
    ckpt.adaptive_probes[{pool_index, depth}] = acc;
  }
  if (!r.Bool(&ckpt.has_gradient_state)) return fail();
  if (ckpt.has_gradient_state && !r.GradientState(&ckpt.gradient_state)) {
    return fail();
  }
  if (!r.Bool(&ckpt.search_done) || !r.Count(&n)) return fail();
  ckpt.layers.resize(n);
  for (auto& row : ckpt.layers) {
    uint64_t len = 0;
    if (!r.Count(&len)) return fail();
    row.resize(len);
    for (int& depth : row) {
      if (!r.I32(&depth)) return fail();
    }
  }
  if (!r.Count(&n)) return fail();
  ckpt.beta.resize(n);
  for (double& b : ckpt.beta) {
    if (!r.F64(&b)) return fail();
  }
  if (!r.Count(&n)) return fail();
  for (uint64_t i = 0; i < n; ++i) {
    int index = 0;
    std::vector<Matrix> params;
    if (!r.I32(&index) || !r.MatVec(&params)) return fail();
    ckpt.member_params[index] = std::move(params);
  }
  if (!r.Bool(&ckpt.train_done)) return fail();
  return ckpt;
}

}  // namespace ahg::jobs
