#include "jobs/served_tasks.h"

#include <cmath>
#include <csignal>

#include "autodiff/ops.h"
#include "io/model_store.h"
#include "metrics/metrics.h"
#include "models/graph_level.h"
#include "models/link_encoder.h"
#include "nn/linear.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace ahg::jobs {
namespace {

obs::Counter* JobCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

// Per-candidate seed derivation: every candidate trains in its own seed
// domain regardless of evaluation order, the basis of the resume guarantee.
uint64_t CandidateSeed(uint64_t job_seed, int index) {
  return job_seed + static_cast<uint64_t>(index + 1) * 101;
}

}  // namespace

StatusOr<TaskJobOutcome> TaskJob::Run(const TaskEnv& env) {
  AHG_TRACE_SPAN("jobs/task_run");
  auto spec_or = store_->LoadTaskJobSpec(job_id_);
  if (!spec_or.ok()) return spec_or.status();
  const TaskJobSpec spec = std::move(spec_or.value());
  if (spec.candidates.empty()) {
    return Status::InvalidArgument("task spec has no candidates");
  }
  if (spec.kind == TaskKind::kLinkPrediction && env.link == nullptr) {
    return Status::InvalidArgument("link task needs TaskEnv.link");
  }
  if (spec.kind == TaskKind::kGraphClassification &&
      (env.graph_set == nullptr || env.graph_split == nullptr)) {
    return Status::InvalidArgument(
        "graph task needs TaskEnv.graph_set and graph_split");
  }
  auto state_or = store_->LoadState(job_id_);
  if (!state_or.ok()) return state_or.status();
  JobState state = std::move(state_or.value());
  if (state.status == JobStatus::kPublished ||
      state.status == JobStatus::kFailed ||
      state.status == JobStatus::kCancelled) {
    return Status::InvalidArgument("job " + job_id_ + " is terminal (" +
                                   JobStatusName(state.status) + ")");
  }

  TaskJobOutcome outcome;
  TaskJobCheckpoint ckpt;
  if (store_->HasTaskCheckpoint(job_id_)) {
    auto ckpt_or = store_->LoadTaskJobCheckpoint(job_id_);
    if (!ckpt_or.ok()) return ckpt_or.status();
    ckpt = std::move(ckpt_or.value());
    outcome.resumed = true;
    JobCounter("jobs.resumed")->Increment();
  }
  JobCounter("jobs.started")->Increment();
  state.status = JobStatus::kRunning;
  ++state.attempts;
  Status s = store_->SaveState(job_id_, state);
  if (!s.ok()) return s;

  int written = 0;
  auto write_ckpt = [&]() -> Status {
    Status ws = store_->SaveTaskJobCheckpoint(job_id_, ckpt);
    if (!ws.ok()) return ws;
    ++written;
    ++state.checkpoints_written;
    JobCounter("jobs.checkpoints")->Increment();
    if (env.kill_after_checkpoints > 0 &&
        written >= env.kill_after_checkpoints) {
      raise(SIGKILL);
    }
    return Status::OK();
  };
  auto fail_job = [&](Status why) -> StatusOr<TaskJobOutcome> {
    state.status = JobStatus::kFailed;
    state.message = why.ToString();
    (void)store_->SaveState(job_id_, state);
    JobCounter("jobs.failed")->Increment();
    return why;
  };
  auto pause_job = [&](const std::string& where) {
    state.status = JobStatus::kCheckpointed;
    state.message = where;
    Status ps = store_->SaveState(job_id_, state);
    JobCounter("jobs.paused")->Increment();
    outcome.status = JobStatus::kCheckpointed;
    outcome.checkpoints_written = written;
    StatusOr<TaskJobOutcome> out(std::move(outcome));
    if (!ps.ok()) out = ps;
    return out;
  };

  for (size_t i = 0; i < spec.candidates.size(); ++i) {
    if (ckpt.scores.count(static_cast<int>(i)) > 0) continue;
    if (IsCancelled(env.cancel)) {
      return pause_job("cancelled during candidate search");
    }
    AHG_TRACE_SPAN_ARG("jobs/task_candidate", static_cast<int64_t>(i));
    ModelConfig mcfg = spec.candidates[i].config;
    mcfg.seed = CandidateSeed(spec.seed, static_cast<int>(i));
    TrainConfig tcfg = spec.train;
    tcfg.seed = mcfg.seed ^ 0x71a5ULL;
    tcfg.cancel = env.cancel;
    double metric = 0.0;
    std::vector<Matrix> params;
    if (spec.kind == TaskKind::kLinkPrediction) {
      mcfg.in_dim = env.link->train_graph.feature_dim();
      LinkTrainResult trained =
          TrainLinkModel(mcfg, *env.link, tcfg, &params);
      metric = trained.val_auc;
    } else {
      mcfg.in_dim = env.graph_set->feature_dim;
      GraphTrainResult trained =
          TrainGraphClassifier(mcfg, *env.graph_set, *env.graph_split, tcfg,
                               &params);
      metric = trained.val_accuracy;
    }
    // A cancel mid-training left a partial result; the resumed run must
    // retrain this candidate from scratch.
    if (IsCancelled(env.cancel)) {
      return pause_job("cancelled during candidate search");
    }
    ckpt.scores[static_cast<int>(i)] = metric;
    if (ckpt.best_index < 0 || metric > ckpt.scores.at(ckpt.best_index)) {
      ckpt.best_index = static_cast<int>(i);
      ckpt.best_config = mcfg;
      ckpt.best_params = std::move(params);
    }
    s = write_ckpt();
    if (!s.ok()) return fail_job(s);
  }

  if (!ckpt.done) {
    s = SaveModel(store_->WinnerPath(job_id_), ckpt.best_config,
                  ckpt.best_params);
    if (!s.ok()) return fail_job(s);
    ckpt.done = true;
    s = write_ckpt();
    if (!s.ok()) return fail_job(s);
  }

  state.status = JobStatus::kPublished;
  state.message = "ok";
  s = store_->SaveState(job_id_, state);
  if (!s.ok()) return fail_job(s);
  JobCounter("jobs.published")->Increment();
  outcome.status = JobStatus::kPublished;
  outcome.best_index = ckpt.best_index;
  outcome.best_name = spec.candidates[ckpt.best_index].name;
  outcome.best_metric = ckpt.scores.at(ckpt.best_index);
  outcome.winner_path = store_->WinnerPath(job_id_);
  outcome.checkpoints_written = written;
  return outcome;
}

StatusOr<LinkScorer> LinkScorer::Load(const std::string& winner_path) {
  auto loaded = LoadModel(winner_path);
  if (!loaded.ok()) return loaded.status();
  LinkScorer scorer;
  scorer.config_ = loaded.value().config;
  scorer.params_ = std::move(loaded.value().params);
  return scorer;
}

std::vector<double> LinkScorer::Score(
    const Graph& graph, const std::vector<NodePair>& pairs) const {
  AHG_CHECK_EQ(config_.in_dim, graph.feature_dim());
  std::unique_ptr<GnnModel> model = BuildModel(config_);
  model->params()->Restore(params_);
  const Matrix z = model->ForwardInference(graph, graph.features());
  Var logits = ScorePairs(MakeConstant(z), pairs);
  std::vector<double> scores(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    scores[i] = 1.0 / (1.0 + std::exp(-logits->value(static_cast<int>(i), 0)));
  }
  return scores;
}

StatusOr<GraphSetScorer> GraphSetScorer::Load(const std::string& winner_path,
                                              int num_classes) {
  auto loaded = LoadModel(winner_path);
  if (!loaded.ok()) return loaded.status();
  if (loaded.value().params.size() < 2) {
    return Status::InvalidArgument("winner model is missing a head");
  }
  GraphSetScorer scorer;
  scorer.config_ = loaded.value().config;
  scorer.params_ = std::move(loaded.value().params);
  scorer.num_classes_ = num_classes;
  const Matrix& bias = scorer.params_.back();
  if (bias.rows() != 1 || bias.cols() != num_classes) {
    return Status::InvalidArgument("winner head does not match class count");
  }
  return scorer;
}

Matrix GraphSetScorer::PredictProba(const GraphSet& set) const {
  AHG_CHECK_EQ(config_.in_dim, set.feature_dim);
  std::vector<int> all_indices(set.graphs.size());
  for (size_t i = 0; i < set.graphs.size(); ++i) {
    all_indices[i] = static_cast<int>(i);
  }
  const GraphBatch batch = BatchGraphs(set, all_indices);
  std::unique_ptr<GnnModel> model = BuildModel(config_);
  // Reconstruct the training-time head registration so the stored snapshot
  // (model weights + head W + head b) restores shape-by-shape.
  Rng head_rng(config_.seed ^ 0x51ed2701ULL);
  Linear head(model->params(), config_.hidden_dim, num_classes_,
              /*bias=*/true, &head_rng);
  model->params()->Restore(params_);
  std::vector<Var> pooled = PooledLayerOutputs(
      model.get(), batch, /*training=*/false, nullptr, /*mean_pool=*/false);
  return RowSoftmax(head.Apply(pooled.back())->value);
}

}  // namespace ahg::jobs
