// A durable, resumable AutoHEnsGNN search job (ROADMAP open item 5).
//
// SearchJob::Run drives the pipeline stages — proxy ranking, architecture
// search (hierarchical / adaptive / gradient), final ensemble training,
// registry publication — while persisting cumulative progress to a JobStore
// checkpoint at every unit boundary:
//   * per proxy candidate (independently seeded, so completed candidates
//     are skipped verbatim on resume),
//   * per adaptive probe (ditto),
//   * every `gradient_checkpoint_every` epochs of the co-trained gradient
//     search (a full-state snapshot: weights, both Adam moments, dropout
//     RNG position, best-epoch tracking),
//   * per final-train member (independently seeded).
//
// Because every skipped unit is replayed from stored bits and every live
// unit re-derives its seed from the spec, a run killed (SIGKILL) at any
// checkpoint boundary and resumed produces a final ensemble artifact that
// is byte-for-byte identical to an uninterrupted run — the property
// tests/jobs_test.cc proves by memcmp over the serialized ensemble
// directory for all three algorithms.
#ifndef AUTOHENS_JOBS_SEARCH_JOB_H_
#define AUTOHENS_JOBS_SEARCH_JOB_H_

#include <string>
#include <vector>

#include "fabric/fabric.h"
#include "graph/graph.h"
#include "graph/split.h"
#include "jobs/job_store.h"
#include "serve/model_registry.h"
#include "util/cancel.h"
#include "util/status.h"

namespace ahg::jobs {

// Everything a job needs at runtime but must not be persisted: the data,
// the serving plane, cancellation, and test-only fault injection.
struct JobEnv {
  const Graph* graph = nullptr;
  const DataSplit* split = nullptr;
  // Publication target; empty disables publish (the ensemble artifact is
  // still written to the job store).
  std::string registry_dir;
  // Refreshed after a publish so the serving plane sees the new version.
  serve::ModelRegistry* registry = nullptr;
  // When set, Rollout(spec.publish_version) after the refresh: live traffic
  // flips to the new version mid-flight (the publish -> rollout handshake).
  fabric::ServingFabric* fabric = nullptr;
  // Cooperative pause/cancel, polled at unit boundaries. A cancelled run
  // transitions to kCheckpointed and is resumable.
  const CancelToken* cancel = nullptr;
  // Fault injection for kill tests: raise(SIGKILL) immediately after the
  // N-th successful checkpoint write of this attempt (0 disables). The
  // process dies with a fully written, renamed checkpoint on disk.
  int kill_after_checkpoints = 0;
};

struct SearchJobOutcome {
  JobStatus status = JobStatus::kFailed;
  bool resumed = false;  // this attempt started from a checkpoint
  std::vector<std::string> pool_names;
  std::vector<std::vector<int>> layers;
  std::vector<double> beta;
  double ensemble_val_accuracy = 0.0;
  int published_version = 0;  // 0 when publication was disabled
  std::string ensemble_dir;
  int checkpoints_written = 0;  // this attempt only
  double run_seconds = 0.0;
};

class SearchJob {
 public:
  SearchJob(const JobStore* store, std::string job_id)
      : store_(store), job_id_(std::move(job_id)) {}

  // Runs (or resumes) the job to its next boundary: kPublished on success,
  // kCheckpointed when cancelled or paused (resumable — call Run again),
  // with the job store's state.tsv updated to match. Errors (I/O, invalid
  // spec) mark the job kFailed and propagate as a non-OK status.
  StatusOr<SearchJobOutcome> Run(const JobEnv& env);

  const std::string& job_id() const { return job_id_; }

 private:
  const JobStore* store_;
  const std::string job_id_;
};

}  // namespace ahg::jobs

#endif  // AUTOHENS_JOBS_SEARCH_JOB_H_
