#include "jobs/search_job.h"

#include <csignal>
#include <mutex>

#include "core/proxy_eval.h"
#include "core/search_adaptive.h"
#include "core/search_gradient.h"
#include "core/trained_ensemble.h"
#include "kernels/autotune.h"
#include "metrics/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace ahg::jobs {
namespace {

obs::Counter* JobCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

// Seed domain of the final-train members, distinct from the search stages'
// derivations so no training anywhere shares a dropout/init stream.
constexpr uint64_t kFinalTrainSeedSalt = 0x5eedULL;

}  // namespace

StatusOr<SearchJobOutcome> SearchJob::Run(const JobEnv& env) {
  AHG_TRACE_SPAN("jobs/run");
  Stopwatch watch;
  if (env.graph == nullptr || env.split == nullptr) {
    return Status::InvalidArgument("JobEnv needs a graph and a split");
  }
  auto spec_or = store_->LoadJobSpec(job_id_);
  if (!spec_or.ok()) return spec_or.status();
  const SearchJobSpec spec = std::move(spec_or.value());
  auto state_or = store_->LoadState(job_id_);
  if (!state_or.ok()) return state_or.status();
  JobState state = std::move(state_or.value());
  if (state.status == JobStatus::kPublished ||
      state.status == JobStatus::kFailed ||
      state.status == JobStatus::kCancelled) {
    return Status::InvalidArgument("job " + job_id_ + " is terminal (" +
                                   JobStatusName(state.status) + ")");
  }

  SearchJobOutcome outcome;
  SearchJobCheckpoint ckpt;
  if (store_->HasCheckpoint(job_id_)) {
    auto ckpt_or = store_->LoadJobCheckpoint(job_id_);
    if (!ckpt_or.ok()) return ckpt_or.status();
    ckpt = std::move(ckpt_or.value());
    outcome.resumed = true;
    JobCounter("jobs.resumed")->Increment();
  }
  JobCounter("jobs.started")->Increment();
  state.status = JobStatus::kRunning;
  ++state.attempts;
  Status s = store_->SaveState(job_id_, state);
  if (!s.ok()) return s;

  // Checkpoint writer shared by concurrent unit callbacks (proxy candidates
  // evaluate in parallel). The mutex also serializes the ckpt mutations the
  // callbacks make just before calling this.
  std::mutex ckpt_mu;
  Status ckpt_error = Status::OK();
  int written = 0;
  auto write_ckpt_locked = [&] {
    if (!ckpt_error.ok()) return;
    Status ws = store_->SaveJobCheckpoint(job_id_, ckpt);
    if (!ws.ok()) {
      ckpt_error = ws;
      return;
    }
    ++written;
    ++state.checkpoints_written;
    JobCounter("jobs.checkpoints")->Increment();
    if (env.kill_after_checkpoints > 0 &&
        written >= env.kill_after_checkpoints) {
      // Fault injection: die exactly as a power-cut worker would, with the
      // just-renamed checkpoint as the only trace of this attempt.
      raise(SIGKILL);
    }
  };
  auto write_ckpt = [&] {
    std::lock_guard<std::mutex> lock(ckpt_mu);
    write_ckpt_locked();
  };

  auto fail_job = [&](Status why) -> StatusOr<SearchJobOutcome> {
    state.status = JobStatus::kFailed;
    state.message = why.ToString();
    // Best-effort: the propagated status is `why` even if this write fails.
    (void)store_->SaveState(job_id_, state);
    JobCounter("jobs.failed")->Increment();
    return why;
  };
  auto pause_job = [&](const std::string& where) {
    state.status = JobStatus::kCheckpointed;
    state.message = where;
    Status ps = store_->SaveState(job_id_, state);
    JobCounter("jobs.paused")->Increment();
    outcome.status = JobStatus::kCheckpointed;
    outcome.checkpoints_written = written;
    outcome.run_seconds = watch.ElapsedSeconds();
    StatusOr<SearchJobOutcome> out(std::move(outcome));
    if (!ps.ok()) out = ps;
    return out;
  };
  auto cancelled = [&] { return IsCancelled(env.cancel); };
  auto over_budget = [&] {
    return spec.time_budget_seconds > 0.0 &&
           watch.ElapsedSeconds() > spec.time_budget_seconds;
  };

  // --- Stage 1: proxy ranking -> pool of N architectures ---
  if (!ckpt.pool_done) {
    AHG_TRACE_SPAN("jobs/stage_proxy");
    if (cancelled()) return pause_job("cancelled before proxy stage");
    if (spec.candidates.empty()) {
      return fail_job(Status::InvalidArgument("spec has no candidates"));
    }
    if (static_cast<int>(spec.candidates.size()) <= spec.pool_size) {
      ckpt.pool = spec.candidates;
    } else if (over_budget()) {
      // Deterministic degradation: keep the first N candidates as listed.
      ckpt.pool.assign(spec.candidates.begin(),
                       spec.candidates.begin() + spec.pool_size);
      state.message = "budget: proxy ranking shed";
    } else {
      ProxyConfig pcfg;
      pcfg.dataset_ratio = spec.proxy_dataset_ratio;
      pcfg.bagging = spec.proxy_bagging;
      pcfg.model_ratio = spec.proxy_model_ratio;
      pcfg.train_fraction = spec.proxy_train_fraction;
      pcfg.val_fraction = spec.proxy_val_fraction;
      pcfg.num_threads = spec.proxy_num_threads;
      pcfg.train = spec.train;
      pcfg.cancel = env.cancel;
      pcfg.precomputed = ckpt.proxy_scores;
      pcfg.on_candidate_done = [&](int index, const CandidateScore& score) {
        std::lock_guard<std::mutex> lock(ckpt_mu);
        ckpt.proxy_scores[index] = score;
        write_ckpt_locked();
      };
      ProxyEvalResult ranking =
          ProxyEvaluate(spec.candidates, *env.graph, pcfg, spec.seed);
      if (!ckpt_error.ok()) return fail_job(ckpt_error);
      if (ranking.interrupted) return pause_job("cancelled during proxy");
      ckpt.pool = SelectTopCandidates(ranking, spec.pool_size);
    }
    ckpt.pool_done = true;
    write_ckpt();
    if (!ckpt_error.ok()) return fail_job(ckpt_error);
  }
  for (const CandidateSpec& c : ckpt.pool) outcome.pool_names.push_back(c.name);

  // --- Stage 2: architecture / ensemble-weight search ---
  if (!ckpt.search_done) {
    AHG_TRACE_SPAN("jobs/stage_search");
    if (cancelled()) return pause_job("cancelled before search stage");
    const int n = static_cast<int>(ckpt.pool.size());
    if (spec.algo == JobAlgo::kHierarchical || over_budget()) {
      // Plain hierarchical baseline (also the budget fallback): cyclic
      // member depths 1..L per architecture, uniform beta.
      ckpt.layers.clear();
      for (const CandidateSpec& c : ckpt.pool) {
        std::vector<int> row;
        for (int i = 0; i < spec.k; ++i) {
          row.push_back(i % c.config.num_layers + 1);
        }
        ckpt.layers.push_back(std::move(row));
      }
      ckpt.beta.assign(n, 1.0 / n);
      if (spec.algo != JobAlgo::kHierarchical) {
        state.message = "budget: search stage shed to hierarchical";
      }
    } else if (spec.algo == JobAlgo::kAdaptive) {
      AdaptiveSearchConfig acfg;
      acfg.k = spec.k;
      acfg.epsilon = spec.adaptive_epsilon;
      acfg.gamma = spec.adaptive_gamma;
      acfg.lambda = spec.adaptive_lambda;
      acfg.train = spec.train;
      acfg.seed = spec.seed ^ 0xada9dULL;
      acfg.cancel = env.cancel;
      acfg.precomputed_probes = ckpt.adaptive_probes;
      acfg.on_probe_done = [&](int pool_index, int depth, double acc) {
        std::lock_guard<std::mutex> lock(ckpt_mu);
        ckpt.adaptive_probes[{pool_index, depth}] = acc;
        write_ckpt_locked();
      };
      AdaptiveSearchResult search =
          SearchAdaptive(ckpt.pool, *env.graph, *env.split, acfg);
      if (!ckpt_error.ok()) return fail_job(ckpt_error);
      if (search.interrupted) {
        return pause_job("cancelled during adaptive search");
      }
      ckpt.layers = search.layers;
      ckpt.beta = search.beta;
    } else {
      GradientSearchConfig gcfg;
      gcfg.k = spec.k;
      gcfg.update_every = spec.gradient_update_every;
      gcfg.arch_learning_rate = spec.gradient_arch_learning_rate;
      gcfg.max_epochs = spec.gradient_max_epochs;
      gcfg.patience = spec.gradient_patience;
      gcfg.train = spec.train;
      gcfg.seed = spec.seed ^ 0xa11ce5ULL;
      gcfg.cancel = env.cancel;
      gcfg.checkpoint_every = spec.gradient_checkpoint_every;
      gcfg.on_checkpoint = [&](const GradientSearchState& st) {
        std::lock_guard<std::mutex> lock(ckpt_mu);
        ckpt.gradient_state = st;
        ckpt.has_gradient_state = true;
        write_ckpt_locked();
      };
      // Resume from a copy: on_checkpoint overwrites ckpt.gradient_state
      // while the search still holds the resume pointer.
      GradientSearchState resume_state;
      if (ckpt.has_gradient_state) {
        resume_state = ckpt.gradient_state;
        gcfg.resume = &resume_state;
      }
      GradientSearchResult search =
          SearchGradient(ckpt.pool, *env.graph, *env.split, gcfg);
      if (!ckpt_error.ok()) return fail_job(ckpt_error);
      if (search.interrupted) {
        return pause_job("cancelled during gradient search");
      }
      ckpt.layers = search.layers;
      ckpt.beta = search.beta;
    }
    ckpt.search_done = true;
    write_ckpt();
    if (!ckpt_error.ok()) return fail_job(ckpt_error);
  }
  outcome.layers = ckpt.layers;
  outcome.beta = ckpt.beta;

  // --- Stage 3: final ensemble training, one checkpoint per member ---
  TrainedEnsemble ensemble;
  const std::string ensemble_dir = store_->EnsembleDir(job_id_);
  if (!ckpt.train_done) {
    AHG_TRACE_SPAN("jobs/stage_train");
    const std::vector<MemberSpec> members = TrainedEnsemble::PlanMembers(
        ckpt.pool, ckpt.layers, *env.graph, spec.train,
        spec.seed ^ kFinalTrainSeedSalt);
    for (size_t i = 0; i < members.size(); ++i) {
      if (ckpt.member_params.count(static_cast<int>(i)) > 0) continue;
      if (cancelled()) return pause_job("cancelled during final train");
      MemberSpec member = members[i];
      member.train.cancel = env.cancel;
      std::vector<Matrix> params =
          TrainedEnsemble::TrainMember(member, *env.graph, *env.split);
      // A cancel mid-member produced a partial snapshot; discard it so the
      // resumed run retrains this member from scratch (deterministically).
      if (cancelled()) return pause_job("cancelled during final train");
      {
        std::lock_guard<std::mutex> lock(ckpt_mu);
        ckpt.member_params[static_cast<int>(i)] = std::move(params);
        write_ckpt_locked();
      }
      if (!ckpt_error.ok()) return fail_job(ckpt_error);
    }
    std::vector<std::vector<Matrix>> ordered;
    ordered.reserve(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      ordered.push_back(ckpt.member_params.at(static_cast<int>(i)));
    }
    ensemble =
        TrainedEnsemble::FromParts(members, std::move(ordered), ckpt.beta);
    s = ensemble.Save(ensemble_dir);
    if (!s.ok()) return fail_job(s);
    ckpt.train_done = true;
    write_ckpt();
    if (!ckpt_error.ok()) return fail_job(ckpt_error);
  } else {
    auto loaded = TrainedEnsemble::Load(ensemble_dir);
    if (!loaded.ok()) return fail_job(loaded.status());
    ensemble = std::move(loaded.value());
  }
  outcome.ensemble_dir = ensemble_dir;
  if (!env.split->val.empty()) {
    const Matrix probs = ensemble.PredictProba(*env.graph);
    outcome.ensemble_val_accuracy =
        Accuracy(probs, env.graph->labels(), env.split->val);
  }

  // --- Stage 4: publish the winner into the serving plane ---
  if (spec.publish_version > 0 && !env.registry_dir.empty()) {
    AHG_TRACE_SPAN("jobs/stage_publish");
    if (cancelled()) return pause_job("cancelled before publish");
    const int lead = ensemble.LeadMemberIndex();
    s = serve::ModelRegistry::Publish(
        env.registry_dir, spec.publish_version, ensemble.member_config(lead),
        ensemble.member_params(lead), ensemble.member_num_classes(lead));
    if (!s.ok()) return fail_job(s);
    if (env.registry != nullptr) {
      s = env.registry->Refresh();
      if (!s.ok()) return fail_job(s);
    }
    if (env.fabric != nullptr) {
      s = env.fabric->Rollout(spec.publish_version);
      if (!s.ok()) return fail_job(s);
    }
    outcome.published_version = spec.publish_version;
    state.published_version = spec.publish_version;
  }

  // Persist the kernel-tuning profile this run accumulated as a job
  // artifact. It goes in the job directory, NOT the ensemble directory:
  // ensemble payloads are compared bitwise across runs (twin-job
  // determinism), while tuning winners are timing-dependent.
  {
    kernels::KernelTuner& tuner = kernels::KernelTuner::Global();
    if (tuner.entries() > 0) {
      tuner.SaveFile(store_->JobDir(job_id_) + "/tuning.ahgt");
    }
  }

  state.status = JobStatus::kPublished;
  state.message = "ok";
  s = store_->SaveState(job_id_, state);
  if (!s.ok()) return fail_job(s);
  JobCounter("jobs.published")->Increment();
  outcome.status = JobStatus::kPublished;
  outcome.checkpoints_written = written;
  outcome.run_seconds = watch.ElapsedSeconds();
  return outcome;
}

}  // namespace ahg::jobs
