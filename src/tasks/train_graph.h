// Graph classification (Table IX): zoo model on the block-diagonal batch,
// sum-pool readout per graph, linear classifier, early stopping on
// validation accuracy.
#ifndef AUTOHENS_TASKS_TRAIN_GRAPH_H_
#define AUTOHENS_TASKS_TRAIN_GRAPH_H_

#include <vector>

#include "graph/graph_set.h"
#include "models/model.h"
#include "tasks/train_node.h"

namespace ahg {

struct GraphSetSplit {
  std::vector<int> train;  // indices into GraphSet.graphs
  std::vector<int> val;
  std::vector<int> test;
};

GraphSetSplit RandomGraphSetSplit(const GraphSet& set, double train_fraction,
                                  double val_fraction, Rng* rng);

struct GraphTrainResult {
  Matrix probs;  // per-graph probabilities over the whole set (set order)
  double val_accuracy = 0.0;
  double test_accuracy = 0.0;
  double train_seconds = 0.0;
};

// When `best_params` is non-null it receives the best-validation snapshot
// of the model weights plus the pooled classifier head (last two tensors),
// so a search job's winner can be persisted and served without retraining.
// Honors train_config.cancel at epoch boundaries.
GraphTrainResult TrainGraphClassifier(const ModelConfig& model_config,
                                      const GraphSet& set,
                                      const GraphSetSplit& split,
                                      const TrainConfig& train_config,
                                      std::vector<Matrix>* best_params =
                                          nullptr);

}  // namespace ahg

#endif  // AUTOHENS_TASKS_TRAIN_GRAPH_H_
