// Mini-batch training with neighbor sampling (the GraphSAGE protocol the
// zoo's SAGE models were designed for): each step samples a batch of
// training nodes plus a fanout-limited multi-hop neighborhood, builds the
// induced subgraph and takes one optimizer step on it. Evaluation runs
// full-batch on the whole graph. This trades per-step cost for more steps
// and bounds memory by the batch closure instead of the full graph — the
// scalability lever for graphs larger than the full-batch trainer handles.
#ifndef AUTOHENS_TASKS_TRAIN_NODE_MINIBATCH_H_
#define AUTOHENS_TASKS_TRAIN_NODE_MINIBATCH_H_

#include "graph/graph.h"
#include "graph/split.h"
#include "models/model.h"
#include "tasks/train_node.h"

namespace ahg {

struct MinibatchConfig {
  int batch_size = 256;
  // Maximum sampled in-neighbors per node per hop; hops = model depth.
  int fanout = 10;
  // Evaluate (full-batch) every this many epochs.
  int eval_every = 1;
};

// Same contract as TrainSingleNodeModel, but each epoch sweeps the training
// nodes in neighbor-sampled mini-batches.
NodeTrainResult TrainSingleNodeModelMinibatch(
    const ModelConfig& model_config, const Graph& graph,
    const DataSplit& split, const TrainConfig& train_config,
    const MinibatchConfig& minibatch_config);

// Exposed for testing: samples the fanout-limited closure of `seeds` over
// `hops` hops of in-neighbors and returns the induced subgraph; the first
// seeds.size() nodes of the subgraph are the seeds in order.
struct SampledBatch {
  Graph graph;
  std::vector<int> node_map;  // subgraph index -> original index
  int num_seeds = 0;
};

SampledBatch SampleNeighborhoodBatch(const Graph& graph,
                                     const std::vector<int>& seeds, int hops,
                                     int fanout, Rng* rng);

}  // namespace ahg

#endif  // AUTOHENS_TASKS_TRAIN_NODE_MINIBATCH_H_
