#include "tasks/train_node.h"

#include "autodiff/ops.h"
#include "metrics/metrics.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/pool.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace ahg {

NodeTrainResult TrainSingleNodeModel(const ModelConfig& model_config,
                                     const Graph& graph,
                                     const DataSplit& split,
                                     const TrainConfig& train_config) {
  AHG_TRACE_SPAN("train/node_model");
  Stopwatch watch;
  // Apply the per-config kernel-thread override for the duration of this
  // training run. Skipped inside a parallel region (proxy evaluation trains
  // candidates concurrently): kernels run inline there, and mutating the
  // global setting from worker threads would race across candidates.
  ScopedNumThreads scoped_threads(
      InParallelRegion() ? 0 : train_config.num_threads);
  // Memory-plane switches are thread-local, so this also covers proxy-eval
  // workers (each candidate trains wholly inside one worker thread). The
  // arena trims pool-idle buffers grown by this run when it ends.
  ScopedMemPlane mem_plane(train_config.pooling, train_config.fusion);
  ScopedArena arena(train_config.pooling);
  ModelConfig cfg = model_config;
  cfg.in_dim = graph.feature_dim();
  AHG_CHECK_GT(cfg.in_dim, 0);
  std::unique_ptr<GnnModel> model = BuildModel(cfg);
  Rng init_rng(cfg.seed ^ 0x9e3779b9ULL);
  Linear head(model->params(), cfg.hidden_dim, graph.num_classes(),
              /*bias=*/true, &init_rng);

  AdamConfig adam_config;
  adam_config.learning_rate = train_config.learning_rate;
  adam_config.weight_decay = train_config.weight_decay;
  Adam optimizer(model->params()->params(), adam_config);

  Rng dropout_rng(train_config.seed);
  Var features = MakeConstant(graph.features());

  auto forward_logits = [&](bool training) {
    GnnContext ctx;
    ctx.graph = &graph;
    ctx.training = training;
    ctx.rng = &dropout_rng;
    std::vector<Var> layers = model->LayerOutputs(ctx, features);
    return head.Apply(layers.back());
  };

  NodeTrainResult result;
  int epochs_since_best = 0;
  static obs::Counter* epochs_counter =
      obs::MetricsRegistry::Global().GetCounter("train.epochs");
  for (int epoch = 1; epoch <= train_config.max_epochs; ++epoch) {
    if (IsCancelled(train_config.cancel)) break;
    AHG_TRACE_SPAN_ARG("train/epoch", epoch);
    epochs_counter->Increment();
    // Train step.
    model->params()->ZeroGrad();
    Var loss =
        MaskedCrossEntropy(forward_logits(true), graph.labels(), split.train);
    Backward(loss);
    optimizer.Step();
    if (train_config.lr_decay_every > 0 &&
        epoch % train_config.lr_decay_every == 0) {
      optimizer.set_learning_rate(optimizer.learning_rate() *
                                  train_config.lr_decay);
    }

    // Validation (eval-mode forward, no dropout).
    Var logits = forward_logits(false);
    const Matrix probs = RowSoftmax(logits->value);
    const double val_acc =
        split.val.empty() ? -Accuracy(probs, graph.labels(), split.train)
                          : Accuracy(probs, graph.labels(), split.val);
    if (epoch == 1 || val_acc > result.val_accuracy) {
      result.val_accuracy = val_acc;
      result.best_epoch = epoch;
      result.probs = probs;
      epochs_since_best = 0;
    } else if (++epochs_since_best >= train_config.patience) {
      break;
    }
  }
  if (split.val.empty()) result.val_accuracy = -result.val_accuracy;
  if (!split.test.empty()) {
    result.test_accuracy = Accuracy(result.probs, graph.labels(), split.test);
  }
  result.train_seconds = watch.ElapsedSeconds();
  return result;
}

NodeTrainResult GridSearchTrain(const ModelConfig& model_config,
                                const Graph& graph, const DataSplit& split,
                                const TrainConfig& train_config,
                                const GridSearchSpace& space,
                                ModelConfig* best_model_config,
                                TrainConfig* best_train_config) {
  NodeTrainResult best;
  bool first = true;
  for (double lr : space.learning_rates) {
    for (double dropout : space.dropouts) {
      if (IsCancelled(train_config.cancel)) return best;
      ModelConfig mcfg = model_config;
      mcfg.dropout = dropout;
      TrainConfig tcfg = train_config;
      tcfg.learning_rate = lr;
      NodeTrainResult result =
          TrainSingleNodeModel(mcfg, graph, split, tcfg);
      if (first || result.val_accuracy > best.val_accuracy) {
        first = false;
        best = std::move(result);
        if (best_model_config != nullptr) *best_model_config = mcfg;
        if (best_train_config != nullptr) *best_train_config = tcfg;
      }
    }
  }
  return best;
}

}  // namespace ahg
