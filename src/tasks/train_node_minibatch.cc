#include "tasks/train_node_minibatch.h"

#include <algorithm>
#include <unordered_map>

#include "autodiff/ops.h"
#include "metrics/metrics.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "util/stopwatch.h"

namespace ahg {

SampledBatch SampleNeighborhoodBatch(const Graph& graph,
                                     const std::vector<int>& seeds, int hops,
                                     int fanout, Rng* rng) {
  AHG_CHECK(!seeds.empty());
  const SparseMatrix& adj = graph.Adjacency(AdjacencyKind::kRawSelfLoops);
  // Closure: BFS over sampled in-neighbors, seeds first so their subgraph
  // indices are 0..num_seeds-1.
  std::unordered_map<int, int> index_of;
  std::vector<int> node_map;
  auto add_node = [&](int node) {
    auto [it, inserted] =
        index_of.insert({node, static_cast<int>(node_map.size())});
    if (inserted) node_map.push_back(node);
    return it->second;
  };
  for (int seed : seeds) add_node(seed);
  std::vector<int> frontier = seeds;
  for (int hop = 0; hop < hops; ++hop) {
    std::vector<int> next;
    for (int node : frontier) {
      const int64_t begin = adj.row_ptr()[node];
      const int64_t degree = adj.row_ptr()[node + 1] - begin;
      if (degree <= fanout) {
        for (int64_t i = begin; i < begin + degree; ++i) {
          const int nbr = adj.col_idx()[i];
          if (index_of.find(nbr) == index_of.end()) next.push_back(nbr);
          add_node(nbr);
        }
      } else {
        for (int pick : rng->SampleWithoutReplacement(
                 static_cast<int>(degree), fanout)) {
          const int nbr = adj.col_idx()[begin + pick];
          if (index_of.find(nbr) == index_of.end()) next.push_back(nbr);
          add_node(nbr);
        }
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }

  // Induced subgraph on the closure; node_map order keeps seeds first, so
  // subgraph ids 0..num_seeds-1 are the seed rows.
  StatusOr<Graph> sub = graph.InducedSubgraph(node_map);
  AHG_CHECK_MSG(sub.ok(), sub.status().message());
  SampledBatch batch;
  batch.graph = std::move(sub).value();
  batch.node_map = std::move(node_map);
  batch.num_seeds = static_cast<int>(seeds.size());
  return batch;
}

NodeTrainResult TrainSingleNodeModelMinibatch(
    const ModelConfig& model_config, const Graph& graph,
    const DataSplit& split, const TrainConfig& train_config,
    const MinibatchConfig& minibatch_config) {
  Stopwatch watch;
  ModelConfig cfg = model_config;
  cfg.in_dim = graph.feature_dim();
  std::unique_ptr<GnnModel> model = BuildModel(cfg);
  Rng init_rng(cfg.seed ^ 0x9e3779b9ULL);
  Linear head(model->params(), cfg.hidden_dim, graph.num_classes(),
              /*bias=*/true, &init_rng);
  AdamConfig adam_config;
  adam_config.learning_rate = train_config.learning_rate;
  adam_config.weight_decay = train_config.weight_decay;
  Adam optimizer(model->params()->params(), adam_config);
  Rng rng(train_config.seed);

  Var full_features = MakeConstant(graph.features());
  auto full_eval_probs = [&] {
    GnnContext ctx{&graph, /*training=*/false, nullptr};
    Var logits = head.Apply(model->LayerOutputs(ctx, full_features).back());
    return RowSoftmax(logits->value);
  };

  NodeTrainResult result;
  std::vector<int> train_nodes = split.train;
  int epochs_since_best = 0;
  for (int epoch = 1; epoch <= train_config.max_epochs; ++epoch) {
    rng.Shuffle(&train_nodes);
    for (size_t begin = 0; begin < train_nodes.size();
         begin += minibatch_config.batch_size) {
      const size_t end = std::min(train_nodes.size(),
                                  begin + minibatch_config.batch_size);
      std::vector<int> seeds(train_nodes.begin() + begin,
                             train_nodes.begin() + end);
      SampledBatch batch = SampleNeighborhoodBatch(
          graph, seeds, cfg.num_layers, minibatch_config.fanout, &rng);
      // Loss on the seed rows (indices 0..num_seeds-1 by construction).
      std::vector<int> seed_idx(batch.num_seeds);
      for (int i = 0; i < batch.num_seeds; ++i) seed_idx[i] = i;
      model->params()->ZeroGrad();
      GnnContext ctx{&batch.graph, /*training=*/true, &rng};
      Var x = MakeConstant(batch.graph.features());
      Var logits = head.Apply(model->LayerOutputs(ctx, x).back());
      Backward(MaskedCrossEntropy(logits, batch.graph.labels(), seed_idx));
      optimizer.Step();
    }
    if (train_config.lr_decay_every > 0 &&
        epoch % train_config.lr_decay_every == 0) {
      optimizer.set_learning_rate(optimizer.learning_rate() *
                                  train_config.lr_decay);
    }
    if (epoch % std::max(1, minibatch_config.eval_every) != 0) continue;
    const Matrix probs = full_eval_probs();
    const double val_acc =
        split.val.empty() ? -Accuracy(probs, graph.labels(), split.train)
                          : Accuracy(probs, graph.labels(), split.val);
    if (result.best_epoch == 0 || val_acc > result.val_accuracy) {
      result.val_accuracy = val_acc;
      result.best_epoch = epoch;
      result.probs = probs;
      epochs_since_best = 0;
    } else if (++epochs_since_best >= train_config.patience) {
      break;
    }
  }
  if (split.val.empty()) result.val_accuracy = -result.val_accuracy;
  if (!split.test.empty()) {
    result.test_accuracy = Accuracy(result.probs, graph.labels(), split.test);
  }
  result.train_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace ahg
