#include "tasks/train_link.h"

#include <cmath>

#include "autodiff/ops.h"
#include "metrics/metrics.h"
#include "models/link_encoder.h"
#include "nn/optimizer.h"
#include "util/stopwatch.h"

namespace ahg {
namespace {

std::vector<NodePair> ConcatPairs(const std::vector<NodePair>& pos,
                                  const std::vector<NodePair>& neg) {
  std::vector<NodePair> all = pos;
  all.insert(all.end(), neg.begin(), neg.end());
  return all;
}

std::vector<double> SigmoidScores(const Var& logits) {
  std::vector<double> scores(logits->rows());
  for (int r = 0; r < logits->rows(); ++r) {
    scores[r] = 1.0 / (1.0 + std::exp(-logits->value(r, 0)));
  }
  return scores;
}

}  // namespace

std::vector<int> LinkLabels(int num_pos, int num_neg) {
  std::vector<int> labels(num_pos, 1);
  labels.insert(labels.end(), num_neg, 0);
  return labels;
}

LinkTrainResult TrainLinkModel(const ModelConfig& model_config,
                               const LinkSplit& split,
                               const TrainConfig& train_config,
                               std::vector<Matrix>* best_params) {
  Stopwatch watch;
  const Graph& graph = split.train_graph;
  ModelConfig cfg = model_config;
  cfg.in_dim = graph.feature_dim();
  std::unique_ptr<GnnModel> model = BuildModel(cfg);

  AdamConfig adam_config;
  adam_config.learning_rate = train_config.learning_rate;
  adam_config.weight_decay = train_config.weight_decay;
  Adam optimizer(model->params()->params(), adam_config);

  Rng dropout_rng(train_config.seed);
  Var features = MakeConstant(graph.features());

  const std::vector<NodePair> train_pairs =
      ConcatPairs(split.train_pos, split.train_neg);
  const std::vector<double> train_targets = [&] {
    std::vector<double> t(split.train_pos.size(), 1.0);
    t.insert(t.end(), split.train_neg.size(), 0.0);
    return t;
  }();
  const std::vector<NodePair> val_pairs =
      ConcatPairs(split.val_pos, split.val_neg);
  const std::vector<NodePair> test_pairs =
      ConcatPairs(split.test_pos, split.test_neg);
  const std::vector<int> val_labels = LinkLabels(
      static_cast<int>(split.val_pos.size()),
      static_cast<int>(split.val_neg.size()));
  const std::vector<int> test_labels = LinkLabels(
      static_cast<int>(split.test_pos.size()),
      static_cast<int>(split.test_neg.size()));

  auto embed = [&](bool training) {
    GnnContext ctx;
    ctx.graph = &graph;
    ctx.training = training;
    ctx.rng = &dropout_rng;
    return model->LayerOutputs(ctx, features).back();
  };

  LinkTrainResult result;
  if (best_params != nullptr) *best_params = model->params()->Snapshot();
  int epochs_since_best = 0;
  for (int epoch = 1; epoch <= train_config.max_epochs; ++epoch) {
    if (IsCancelled(train_config.cancel)) break;
    model->params()->ZeroGrad();
    Var loss =
        BceWithLogits(ScorePairs(embed(true), train_pairs), train_targets);
    Backward(loss);
    optimizer.Step();
    if (train_config.lr_decay_every > 0 &&
        epoch % train_config.lr_decay_every == 0) {
      optimizer.set_learning_rate(optimizer.learning_rate() *
                                  train_config.lr_decay);
    }

    Var z = embed(false);
    const std::vector<double> val_scores =
        SigmoidScores(ScorePairs(z, val_pairs));
    const double val_auc = RocAuc(val_scores, val_labels);
    if (epoch == 1 || val_auc > result.val_auc) {
      result.val_auc = val_auc;
      result.val_scores = val_scores;
      result.test_scores = SigmoidScores(ScorePairs(z, test_pairs));
      result.test_auc = RocAuc(result.test_scores, test_labels);
      if (best_params != nullptr) *best_params = model->params()->Snapshot();
      epochs_since_best = 0;
    } else if (++epochs_since_best >= train_config.patience) {
      break;
    }
  }
  result.train_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace ahg
