// Link prediction (Table VIII): a zoo model encodes nodes, a dot-product
// decoder scores pairs, trained with binary cross-entropy against sampled
// negatives and early-stopped on validation AUC.
#ifndef AUTOHENS_TASKS_TRAIN_LINK_H_
#define AUTOHENS_TASKS_TRAIN_LINK_H_

#include <vector>

#include "graph/split.h"
#include "models/model.h"
#include "tasks/train_node.h"

namespace ahg {

struct LinkTrainResult {
  double val_auc = 0.0;
  double test_auc = 0.0;
  // Sigmoid scores at the best epoch, ordered positives-then-negatives to
  // match Labels() below; kept so ensembles can average scores.
  std::vector<double> val_scores;
  std::vector<double> test_scores;
  double train_seconds = 0.0;
};

// 1-labels for positives followed by 0-labels for negatives.
std::vector<int> LinkLabels(int num_pos, int num_neg);

// When `best_params` is non-null it receives the encoder's best-validation
// weight snapshot (ParameterStore order), so the winner of a search job can
// be persisted and served without retraining. Honors train_config.cancel at
// epoch boundaries (best-so-far result, partial snapshot).
LinkTrainResult TrainLinkModel(const ModelConfig& model_config,
                               const LinkSplit& split,
                               const TrainConfig& train_config,
                               std::vector<Matrix>* best_params = nullptr);

}  // namespace ahg

#endif  // AUTOHENS_TASKS_TRAIN_LINK_H_
