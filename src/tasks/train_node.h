// Full-batch training of a single node-classification model: a zoo model
// plus a linear classifier head on its last layer output, Adam with weight
// decay, stepwise LR decay, and early stopping on validation accuracy with
// best-epoch prediction capture (the paper's appendix A1 protocol).
#ifndef AUTOHENS_TASKS_TRAIN_NODE_H_
#define AUTOHENS_TASKS_TRAIN_NODE_H_

#include <vector>

#include "graph/graph.h"
#include "graph/split.h"
#include "models/model.h"
#include "util/cancel.h"

namespace ahg {

struct TrainConfig {
  int max_epochs = 120;
  int patience = 15;  // early-stop patience in epochs
  double learning_rate = 1e-2;
  double weight_decay = 5e-4;
  double lr_decay = 0.9;
  int lr_decay_every = 3;
  uint64_t seed = 1;  // dropout-noise seed (weight init comes from the model)
  // Kernel threads (SpMM/GEMM) while this model trains; 0 keeps the global
  // SetNumThreads() setting. Ignored when training already runs inside a
  // parallel region (e.g. proxy evaluation), where kernels execute inline.
  int num_threads = 0;
  // Recycle tensor buffers through the thread-local MatrixPool for the
  // duration of the run (tensor/pool.h); a run-scoped arena trims the pool
  // back to its entry watermark on exit. Bitwise-neutral.
  bool pooling = false;
  // Use fused single-pass kernels (Linear+ReLU, masked-row cross-entropy).
  // Bitwise-neutral; independent of `pooling`.
  bool fusion = false;
  // Optional cooperative cancellation, polled at epoch boundaries. A
  // cancelled run returns its best-so-far result early; callers that need
  // complete results must check the token after the call. Not owned; must
  // outlive the run. Safe to set from another thread.
  const CancelToken* cancel = nullptr;
};

struct NodeTrainResult {
  Matrix probs;  // full-graph class probabilities at the best epoch
  double val_accuracy = 0.0;
  double test_accuracy = 0.0;  // 0 when the split has no test nodes
  int best_epoch = 0;
  double train_seconds = 0.0;
};

// Builds the model from `model_config` (in_dim is filled from the graph) and
// trains it on `split`.
NodeTrainResult TrainSingleNodeModel(const ModelConfig& model_config,
                                     const Graph& graph,
                                     const DataSplit& split,
                                     const TrainConfig& train_config);

// The hyper-parameter grid the proxy-evaluation stage searches per model
// (a subset of the paper's appendix grid, sized for CPU budgets).
struct GridSearchSpace {
  std::vector<double> learning_rates{1e-2, 3e-2};
  std::vector<double> dropouts{0.5, 0.25};
};

// Trains every (lr, dropout) combination and returns the best-validation
// result; `best_model_config`/`best_train_config` receive the winning
// settings when non-null.
NodeTrainResult GridSearchTrain(const ModelConfig& model_config,
                                const Graph& graph, const DataSplit& split,
                                const TrainConfig& train_config,
                                const GridSearchSpace& space,
                                ModelConfig* best_model_config,
                                TrainConfig* best_train_config);

}  // namespace ahg

#endif  // AUTOHENS_TASKS_TRAIN_NODE_H_
