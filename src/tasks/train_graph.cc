#include "tasks/train_graph.h"

#include <numeric>

#include "autodiff/ops.h"
#include "metrics/metrics.h"
#include "models/graph_level.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "util/stopwatch.h"

namespace ahg {

GraphSetSplit RandomGraphSetSplit(const GraphSet& set, double train_fraction,
                                  double val_fraction, Rng* rng) {
  std::vector<int> indices(set.graphs.size());
  std::iota(indices.begin(), indices.end(), 0);
  rng->Shuffle(&indices);
  const int n = static_cast<int>(indices.size());
  const int n_train = std::max(1, static_cast<int>(n * train_fraction));
  const int n_val = static_cast<int>(n * val_fraction);
  GraphSetSplit split;
  split.train.assign(indices.begin(), indices.begin() + n_train);
  split.val.assign(indices.begin() + n_train,
                   indices.begin() + std::min(n, n_train + n_val));
  split.test.assign(indices.begin() + std::min(n, n_train + n_val),
                    indices.end());
  return split;
}

GraphTrainResult TrainGraphClassifier(const ModelConfig& model_config,
                                      const GraphSet& set,
                                      const GraphSetSplit& split,
                                      const TrainConfig& train_config,
                                      std::vector<Matrix>* best_params) {
  Stopwatch watch;
  // One merged batch over the whole set; masks pick the partition, exactly
  // like transductive node classification.
  std::vector<int> all_indices(set.graphs.size());
  std::iota(all_indices.begin(), all_indices.end(), 0);
  const GraphBatch batch = BatchGraphs(set, all_indices);

  ModelConfig cfg = model_config;
  cfg.in_dim = set.feature_dim;
  std::unique_ptr<GnnModel> model = BuildModel(cfg);
  Rng init_rng(cfg.seed ^ 0x51ed2701ULL);
  Linear head(model->params(), cfg.hidden_dim, set.num_classes,
              /*bias=*/true, &init_rng);

  AdamConfig adam_config;
  adam_config.learning_rate = train_config.learning_rate;
  adam_config.weight_decay = train_config.weight_decay;
  Adam optimizer(model->params()->params(), adam_config);

  Rng dropout_rng(train_config.seed);
  auto forward_logits = [&](bool training) {
    std::vector<Var> pooled = PooledLayerOutputs(model.get(), batch, training,
                                                 &dropout_rng,
                                                 /*mean_pool=*/false);
    return head.Apply(pooled.back());
  };

  GraphTrainResult result;
  if (best_params != nullptr) *best_params = model->params()->Snapshot();
  int epochs_since_best = 0;
  for (int epoch = 1; epoch <= train_config.max_epochs; ++epoch) {
    if (IsCancelled(train_config.cancel)) break;
    model->params()->ZeroGrad();
    Var loss =
        MaskedCrossEntropy(forward_logits(true), set.labels, split.train);
    Backward(loss);
    optimizer.Step();
    if (train_config.lr_decay_every > 0 &&
        epoch % train_config.lr_decay_every == 0) {
      optimizer.set_learning_rate(optimizer.learning_rate() *
                                  train_config.lr_decay);
    }

    const Matrix probs = RowSoftmax(forward_logits(false)->value);
    const double val_acc =
        split.val.empty() ? -Accuracy(probs, set.labels, split.train)
                          : Accuracy(probs, set.labels, split.val);
    if (epoch == 1 || val_acc > result.val_accuracy) {
      result.val_accuracy = val_acc;
      result.probs = probs;
      if (best_params != nullptr) *best_params = model->params()->Snapshot();
      epochs_since_best = 0;
    } else if (++epochs_since_best >= train_config.patience) {
      break;
    }
  }
  if (split.val.empty()) result.val_accuracy = -result.val_accuracy;
  if (!split.test.empty()) {
    result.test_accuracy = Accuracy(result.probs, set.labels, split.test);
  }
  result.train_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace ahg
