#include "fabric/loadgen.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.h"

namespace ahg::fabric {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

ZipfianSampler::ZipfianSampler(int num_items, double exponent) {
  AHG_CHECK_GT(num_items, 0);
  AHG_CHECK(exponent >= 0.0);
  cdf_.resize(static_cast<size_t>(num_items));
  double total = 0.0;
  for (int k = 0; k < num_items; ++k) {
    total += std::pow(static_cast<double>(k + 1), -exponent);
    cdf_[static_cast<size_t>(k)] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

int ZipfianSampler::Sample(Rng* rng) const {
  const double u = rng->Uniform();
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<int>(it - cdf_.begin());
}

double ZipfianSampler::Probability(int rank) const {
  AHG_CHECK(rank >= 0 && rank < num_items());
  const size_t k = static_cast<size_t>(rank);
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

TrafficSimulator::TrafficSimulator(const TrafficOptions& options)
    : options_(options),
      zipf_(options.num_nodes, options.zipf_exponent) {
  AHG_CHECK_GT(options.duration_s, 0.0);
  AHG_CHECK(options.base_qps >= 0.0);
  AHG_CHECK(options.diurnal_amplitude >= 0.0 &&
            options.diurnal_amplitude < 1.0);
  AHG_CHECK_GT(options.diurnal_period_s, 0.0);
  AHG_CHECK(options.burst_multiplier >= 1.0);
  AHG_CHECK(options.burst_fraction >= 0.0 && options.burst_fraction < 1.0);

  if (!options.tenant_weights.empty()) {
    double total = 0.0;
    for (double w : options.tenant_weights) {
      AHG_CHECK(w >= 0.0);
      total += w;
    }
    AHG_CHECK_GT(total, 0.0);
    tenant_cdf_.reserve(options.tenant_weights.size());
    double acc = 0.0;
    for (double w : options.tenant_weights) {
      acc += w / total;
      tenant_cdf_.push_back(acc);
    }
    tenant_cdf_.back() = 1.0;
  }

  // Burst windows: equal-length, placed uniformly at random (from a
  // dedicated fork so adding bursts never perturbs the arrival draws),
  // then clipped and merged if they overlap.
  if (options.burst_multiplier > 1.0 && options.burst_fraction > 0.0 &&
      options.num_bursts > 0) {
    Rng seeder(options.seed);
    Rng burst_rng = seeder.Fork();
    const double window_s =
        options.burst_fraction * options.duration_s / options.num_bursts;
    std::vector<double> starts;
    starts.reserve(static_cast<size_t>(options.num_bursts));
    for (int b = 0; b < options.num_bursts; ++b) {
      starts.push_back(
          burst_rng.Uniform(0.0, options.duration_s - window_s));
    }
    std::sort(starts.begin(), starts.end());
    for (double start : starts) {
      const double end = start + window_s;
      if (!bursts_.empty() && start <= bursts_.back().second) {
        bursts_.back().second = std::max(bursts_.back().second, end);
      } else {
        bursts_.emplace_back(start, end);
      }
    }
  }

  // Per-client streams: fork chain off a seeder distinct from the burst
  // and open-loop streams. Each client's draws depend only on (seed,
  // client index), never on how other clients interleave.
  const int clients = std::max(options.closed_loop_clients, 0);
  Rng client_seeder(options.seed ^ 0x9e3779b97f4a7c15ULL);
  client_rngs_.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    client_rngs_.push_back(client_seeder.Fork());
  }
}

double TrafficSimulator::RateAt(double t_s) const {
  double rate =
      options_.base_qps *
      (1.0 + options_.diurnal_amplitude *
                 std::sin(2.0 * kPi * t_s / options_.diurnal_period_s));
  for (const auto& [start, end] : bursts_) {
    if (t_s >= start && t_s < end) {
      rate *= options_.burst_multiplier;
      break;
    }
  }
  return rate;
}

Arrival TrafficSimulator::Draw(Rng* rng) const {
  Arrival arrival;
  if (!tenant_cdf_.empty()) {
    const double u = rng->Uniform();
    auto it = std::upper_bound(tenant_cdf_.begin(), tenant_cdf_.end(), u);
    if (it == tenant_cdf_.end()) --it;
    arrival.tenant = static_cast<int>(it - tenant_cdf_.begin());
  }
  arrival.node = zipf_.Sample(rng);
  return arrival;
}

std::vector<Arrival> TrafficSimulator::OpenLoopSchedule() const {
  std::vector<Arrival> schedule;
  if (options_.base_qps <= 0.0) return schedule;
  // Thinning (Lewis & Shedler): draw a homogeneous Poisson stream at the
  // envelope's peak rate, keep each point with probability rate(t)/peak.
  const double peak_qps = options_.base_qps *
                          (1.0 + options_.diurnal_amplitude) *
                          options_.burst_multiplier;
  Rng seeder(options_.seed);
  seeder.Fork();  // burst stream (drawn in the ctor) comes first
  Rng rng = seeder.Fork();
  double t_s = 0.0;
  while (true) {
    // Exponential inter-arrival at the peak rate. 1 - U keeps the argument
    // of log strictly positive (Uniform() can return 0).
    t_s += -std::log(1.0 - rng.Uniform()) / peak_qps;
    if (t_s >= options_.duration_s) break;
    if (rng.Uniform() * peak_qps <= RateAt(t_s)) {
      Arrival arrival = Draw(&rng);
      arrival.time_ms = t_s * 1000.0;
      schedule.push_back(arrival);
    }
  }
  return schedule;
}

double TrafficSimulator::ExpectedOpenLoopArrivals() const {
  // Midpoint rule over a fine fixed grid; exactness is unnecessary (tests
  // compare against a Poisson deviation bound, not equality).
  constexpr int kSteps = 20000;
  const double dt = options_.duration_s / kSteps;
  double total = 0.0;
  for (int i = 0; i < kSteps; ++i) {
    total += RateAt((i + 0.5) * dt) * dt;
  }
  return total;
}

Arrival TrafficSimulator::NextQuery(int client) {
  AHG_CHECK(client >= 0 && client < clients());
  return Draw(&client_rngs_[static_cast<size_t>(client)]);
}

}  // namespace ahg::fabric
