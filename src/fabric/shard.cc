#include "fabric/shard.h"

#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace ahg::fabric {

EngineShard::EngineShard(int shard_id, int64_t cache_byte_budget)
    : shard_id_(shard_id), cache_(cache_byte_budget) {}

Status EngineShard::AddTenant(const std::string& tenant, const Graph* graph,
                              const serve::ModelRegistry* registry,
                              serve::EngineOptions engine_options,
                              serve::BatcherOptions batcher_options) {
  if (graph == nullptr || registry == nullptr) {
    return Status::InvalidArgument("AddTenant: null graph or registry");
  }
  if (tenant.empty() || tenant.find('/') != std::string::npos) {
    return Status::InvalidArgument(
        StrFormat("AddTenant: bad tenant name '%s'", tenant.c_str()));
  }
  if (tenants_.count(tenant) != 0) {
    return Status::InvalidArgument(
        StrFormat("AddTenant: tenant '%s' already on shard %d",
                  tenant.c_str(), shard_id_));
  }
  // Every tenant engine shares the shard cache; the tenant name is the
  // stable scope that keeps same-(generation, version) products apart.
  engine_options.shared_cache = &cache_;
  engine_options.cache_scope = tenant;
  Tenant entry;
  entry.graph = graph;
  entry.registry = registry;
  entry.engine = std::make_unique<serve::InferenceEngine>(
      graph, engine_options, &stats_);
  entry.batcher = std::make_unique<serve::RequestBatcher>(
      entry.engine.get(), registry, batcher_options, &stats_);
  tenants_.emplace(tenant, std::move(entry));
  return Status::OK();
}

const EngineShard::Tenant* EngineShard::FindTenant(
    const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second;
}

bool EngineShard::HasTenant(const std::string& tenant) const {
  return FindTenant(tenant) != nullptr;
}

std::future<serve::QueryResult> EngineShard::Enqueue(const std::string& tenant,
                                                     int node,
                                                     double deadline_ms) {
  const Tenant* entry = FindTenant(tenant);
  AHG_CHECK(entry != nullptr);
  return entry->batcher->Enqueue(node, deadline_ms);
}

int EngineShard::queue_depth() const {
  int depth = 0;
  for (const auto& [name, entry] : tenants_) {
    depth += entry.batcher->queue_depth();
  }
  return depth;
}

Status EngineShard::WarmVersion(int version) {
  for (auto& [name, entry] : tenants_) {
    std::shared_ptr<const serve::ServableModel> model =
        entry.registry->Version(version);
    if (model == nullptr) {
      return Status::NotFound(
          StrFormat("shard %d tenant '%s': registry has no version %d",
                    shard_id_, name.c_str(), version));
    }
    Status warmed = entry.engine->Warm(*model);
    if (!warmed.ok()) return warmed;
  }
  return Status::OK();
}

Status EngineShard::AttachStream(const std::string& tenant,
                                 dyn::StreamingServer* stream) {
  if (stream == nullptr) {
    return Status::InvalidArgument("AttachStream: null stream");
  }
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound(
        StrFormat("AttachStream: no tenant '%s' on shard %d", tenant.c_str(),
                  shard_id_));
  }
  it->second.stream = stream;
  return Status::OK();
}

dyn::StreamingServer* EngineShard::stream(const std::string& tenant) const {
  const Tenant* entry = FindTenant(tenant);
  return entry == nullptr ? nullptr : entry->stream;
}

Status EngineShard::PublishStream(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.stream == nullptr) {
    return Status::NotFound(
        StrFormat("PublishStream: no stream for tenant '%s' on shard %d",
                  tenant.c_str(), shard_id_));
  }
  return it->second.stream->PublishTo(it->second.engine.get());
}

serve::InferenceEngine* EngineShard::engine(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second.engine.get();
}

void EngineShard::Flush() {
  for (auto& [name, entry] : tenants_) entry.batcher->Flush();
}

void EngineShard::Drain() {
  for (auto& [name, entry] : tenants_) entry.batcher->Drain();
}

}  // namespace ahg::fabric
