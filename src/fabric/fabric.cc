#include "fabric/fabric.h"

#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace ahg::fabric {

ServingFabric::ServingFabric(const FabricOptions& options)
    : options_(options),
      ring_(options.virtual_nodes),
      m_routed_(obs::MetricsRegistry::Global().GetCounter("fabric.routed")),
      m_shed_(obs::MetricsRegistry::Global().GetCounter("fabric.shed")),
      m_rollouts_(
          obs::MetricsRegistry::Global().GetCounter("fabric.rollouts")) {
  AHG_CHECK_GT(options.num_shards, 0);
  shards_.reserve(static_cast<size_t>(options.num_shards));
  for (int s = 0; s < options.num_shards; ++s) {
    ring_.AddShard(s);
    shards_.push_back(
        std::make_unique<EngineShard>(s, options.shard_cache_byte_budget));
  }
  obs::MetricsRegistry::Global()
      .GetGauge("fabric.shards")
      ->Set(static_cast<double>(options.num_shards));
}

ServingFabric::~ServingFabric() { Drain(); }

namespace {

// Batcher options whose per-batch model resolution honors the fleet pin.
serve::BatcherOptions ResolverPinnedBatcherOptions(
    const serve::BatcherOptions& base, const serve::ModelRegistry* registry,
    const std::atomic<int>* pin) {
  serve::BatcherOptions options = base;
  options.model_resolver =
      [registry, pin]() -> std::shared_ptr<const serve::ServableModel> {
    const int version = pin->load(std::memory_order_acquire);
    if (version > 0) {
      // A pinned version that disappeared from the registry is an
      // operator error; fail the batch (nullptr -> NotFound) rather than
      // silently serving whatever Active() resolves to.
      return registry->Version(version);
    }
    return registry->Active();
  };
  return options;
}

}  // namespace

Status ServingFabric::ServeGraph(const Graph* graph,
                                 const serve::ModelRegistry* registry) {
  if (multi_tenant_) {
    return Status::InvalidArgument(
        "ServeGraph: fabric already hosts tenant graphs");
  }
  if (single_graph_) {
    return Status::InvalidArgument("ServeGraph: already serving a graph");
  }
  for (auto& shard : shards_) {
    Status added = shard->AddTenant(
        kDefaultTenant, graph, registry, options_.engine,
        ResolverPinnedBatcherOptions(options_.batcher, registry,
                                     &pinned_version_));
    if (!added.ok()) return added;
  }
  single_graph_ = true;
  return Status::OK();
}

Status ServingFabric::AddTenant(const std::string& tenant, const Graph* graph,
                                const serve::ModelRegistry* registry) {
  if (single_graph_) {
    return Status::InvalidArgument(
        "AddTenant: fabric already serves a single replicated graph");
  }
  if (tenant == kDefaultTenant) {
    return Status::InvalidArgument(
        StrFormat("AddTenant: '%s' is reserved", kDefaultTenant));
  }
  const int shard_id = ring_.ShardForKey(tenant);
  Status added = shards_[shard_id]->AddTenant(
      tenant, graph, registry, options_.engine,
      ResolverPinnedBatcherOptions(options_.batcher, registry,
                                   &pinned_version_));
  if (!added.ok()) return added;
  multi_tenant_ = true;
  return Status::OK();
}

Status ServingFabric::AttachStream(const std::string& tenant,
                                   dyn::StreamingServer* stream) {
  return shards_[ring_.ShardForKey(tenant)]->AttachStream(tenant, stream);
}

std::future<serve::QueryResult> ServingFabric::FailedFuture(Status status) {
  std::promise<serve::QueryResult> promise;
  serve::QueryResult result;
  result.status = std::move(status);
  promise.set_value(std::move(result));
  return promise.get_future();
}

std::future<serve::QueryResult> ServingFabric::Route(
    int shard_id, const std::string& tenant, int node, double deadline_ms) {
  EngineShard& shard = *shards_[shard_id];
  if (!shard.HasTenant(tenant)) {
    return FailedFuture(Status::NotFound(
        StrFormat("no tenant '%s' on shard %d", tenant.c_str(), shard_id)));
  }
  if (options_.router_queue_limit > 0 &&
      shard.queue_depth() >= options_.router_queue_limit) {
    m_shed_->Increment();
    shard.stats().RecordRejected();
    return FailedFuture(Status::ResourceExhausted(
        StrFormat("shard %d at router queue limit %d", shard_id,
                  options_.router_queue_limit)));
  }
  m_routed_->Increment();
  return shard.Enqueue(tenant, node, deadline_ms);
}

std::future<serve::QueryResult> ServingFabric::Query(int node,
                                                     double deadline_ms) {
  if (!single_graph_) {
    return FailedFuture(Status::InvalidArgument(
        "Query: fabric is not in single-graph mode (use QueryTenant)"));
  }
  return Route(ring_.ShardForNode(node), kDefaultTenant, node, deadline_ms);
}

std::future<serve::QueryResult> ServingFabric::QueryTenant(
    const std::string& tenant, int node, double deadline_ms) {
  return Route(ring_.ShardForKey(tenant), tenant, node, deadline_ms);
}

Status ServingFabric::Rollout(int version) {
  if (version <= 0) {
    return Status::InvalidArgument(
        StrFormat("Rollout: version %d must be positive", version));
  }
  // Prepare: every shard must be able to serve `version` before any shard
  // flips. Warm failures abort with no observable change anywhere.
  if (options_.warm_on_rollout) {
    for (auto& shard : shards_) {
      Status warmed = shard->WarmVersion(version);
      if (!warmed.ok()) return warmed;
    }
  }
  // Commit: one atomic store. Every batch resolves the pin exactly once,
  // so no batch mixes versions and no shard can lag once this returns.
  pinned_version_.store(version, std::memory_order_release);
  m_rollouts_->Increment();
  return Status::OK();
}

StatusOr<uint64_t> ServingFabric::SubmitMutation(const std::string& tenant,
                                                 dyn::Mutation mutation) {
  dyn::StreamingServer* stream =
      shards_[ring_.ShardForKey(tenant)]->stream(tenant);
  if (stream == nullptr) {
    return Status::NotFound(
        StrFormat("SubmitMutation: no stream attached for tenant '%s'",
                  tenant.c_str()));
  }
  return stream->Submit(std::move(mutation));
}

Status ServingFabric::PublishStream(const std::string& tenant) {
  EngineShard& shard = *shards_[ring_.ShardForKey(tenant)];
  dyn::StreamingServer* stream = shard.stream(tenant);
  if (stream == nullptr) {
    return Status::NotFound(
        StrFormat("PublishStream: no stream attached for tenant '%s'",
                  tenant.c_str()));
  }
  StatusOr<dyn::RefreshStats> applied = stream->ApplyPending();
  if (!applied.ok()) return applied.status();
  return shard.PublishStream(tenant);
}

void ServingFabric::Flush() {
  for (auto& shard : shards_) shard->Flush();
}

void ServingFabric::Drain() {
  for (auto& shard : shards_) shard->Drain();
}

}  // namespace ahg::fabric
