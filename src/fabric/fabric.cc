#include "fabric/fabric.h"

#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace ahg::fabric {

ServingFabric::ServingFabric(const FabricOptions& options)
    : options_(options),
      ring_(options.virtual_nodes),
      m_routed_(obs::MetricsRegistry::Global().GetCounter("fabric.routed")),
      m_shed_(obs::MetricsRegistry::Global().GetCounter("fabric.shed")),
      m_rollouts_(
          obs::MetricsRegistry::Global().GetCounter("fabric.rollouts")) {
  AHG_CHECK_GT(options.num_shards, 0);
  shards_.reserve(static_cast<size_t>(options.num_shards));
  for (int s = 0; s < options.num_shards; ++s) {
    ring_.AddShard(s);
    shards_.push_back(
        std::make_unique<EngineShard>(s, options.shard_cache_byte_budget));
  }
  obs::MetricsRegistry::Global()
      .GetGauge("fabric.shards")
      ->Set(static_cast<double>(options.num_shards));
}

ServingFabric::~ServingFabric() { Drain(); }

namespace {

// Batcher options whose per-batch model resolution honors the fleet pin.
serve::BatcherOptions ResolverPinnedBatcherOptions(
    const serve::BatcherOptions& base, const serve::ModelRegistry* registry,
    const std::atomic<int>* pin) {
  serve::BatcherOptions options = base;
  options.model_resolver =
      [registry, pin]() -> std::shared_ptr<const serve::ServableModel> {
    const int version = pin->load(std::memory_order_acquire);
    if (version > 0) {
      // A pinned version that disappeared from the registry is an
      // operator error; fail the batch (nullptr -> NotFound) rather than
      // silently serving whatever Active() resolves to.
      return registry->Version(version);
    }
    return registry->Active();
  };
  return options;
}

}  // namespace

Status ServingFabric::ServeGraph(const Graph* graph,
                                 const serve::ModelRegistry* registry) {
  if (multi_tenant_) {
    return Status::InvalidArgument(
        "ServeGraph: fabric already hosts tenant graphs");
  }
  if (partitioned_) {
    return Status::InvalidArgument(
        "ServeGraph: fabric already serves a partitioned graph");
  }
  if (single_graph_) {
    return Status::InvalidArgument("ServeGraph: already serving a graph");
  }
  for (auto& shard : shards_) {
    Status added = shard->AddTenant(
        kDefaultTenant, graph, registry, options_.engine,
        ResolverPinnedBatcherOptions(options_.batcher, registry,
                                     &pinned_version_));
    if (!added.ok()) return added;
  }
  single_graph_ = true;
  return Status::OK();
}

Status ServingFabric::AddTenant(const std::string& tenant, const Graph* graph,
                                const serve::ModelRegistry* registry) {
  if (single_graph_) {
    return Status::InvalidArgument(
        "AddTenant: fabric already serves a single replicated graph");
  }
  if (partitioned_) {
    return Status::InvalidArgument(
        "AddTenant: fabric already serves a partitioned graph");
  }
  if (tenant == kDefaultTenant) {
    return Status::InvalidArgument(
        StrFormat("AddTenant: '%s' is reserved", kDefaultTenant));
  }
  const int shard_id = ring_.ShardForKey(tenant);
  Status added = shards_[shard_id]->AddTenant(
      tenant, graph, registry, options_.engine,
      ResolverPinnedBatcherOptions(options_.batcher, registry,
                                   &pinned_version_));
  if (!added.ok()) return added;
  multi_tenant_ = true;
  return Status::OK();
}

Status ServingFabric::ServePartitioned(const Graph* graph,
                                       const serve::ModelRegistry* registry) {
  if (single_graph_ || multi_tenant_) {
    return Status::InvalidArgument(
        "ServePartitioned: fabric already serves replicated or tenant graphs");
  }
  if (partitioned_) {
    return Status::InvalidArgument(
        "ServePartitioned: already serving a partitioned graph");
  }
  partition::PartitionedEngine::Options engine_options;
  engine_options.partitioner = options_.partitioner;
  StatusOr<std::unique_ptr<partition::PartitionedEngine>> engine =
      partition::PartitionedEngine::Create(
          *graph, static_cast<int>(shards_.size()), engine_options);
  if (!engine.ok()) return engine.status();
  partitioned_engine_ = std::move(engine).value();
  partitioned_registry_ = registry;
  // One batcher per part: the part's query stream micro-batches
  // independently (its own worker pool and admission queue), but every
  // batcher answers through the single partitioned engine.
  for (size_t p = 0; p < shards_.size(); ++p) {
    part_stats_.push_back(std::make_unique<serve::ServeStats>());
    part_batchers_.push_back(std::make_unique<serve::RequestBatcher>(
        partitioned_engine_.get(), registry,
        ResolverPinnedBatcherOptions(options_.batcher, registry,
                                     &pinned_version_),
        part_stats_.back().get()));
  }
  // Snapshot chain for streamed mutations. Incompatible graphs (directed,
  // self loops) still serve; SubmitMutation reports the stored status.
  StatusOr<dyn::GraphSnapshot> snap = dyn::GraphSnapshot::FromGraph(*graph);
  if (snap.ok()) {
    partitioned_snapshot_ = std::move(snap).value();
  } else {
    partitioned_stream_status_ = snap.status();
  }
  partitioned_ = true;
  return Status::OK();
}

Status ServingFabric::AttachStream(const std::string& tenant,
                                   dyn::StreamingServer* stream) {
  return shards_[ring_.ShardForKey(tenant)]->AttachStream(tenant, stream);
}

std::future<serve::QueryResult> ServingFabric::FailedFuture(Status status) {
  std::promise<serve::QueryResult> promise;
  serve::QueryResult result;
  result.status = std::move(status);
  promise.set_value(std::move(result));
  return promise.get_future();
}

std::future<serve::QueryResult> ServingFabric::Route(
    int shard_id, const std::string& tenant, int node, double deadline_ms) {
  EngineShard& shard = *shards_[shard_id];
  if (!shard.HasTenant(tenant)) {
    return FailedFuture(Status::NotFound(
        StrFormat("no tenant '%s' on shard %d", tenant.c_str(), shard_id)));
  }
  if (options_.router_queue_limit > 0 &&
      shard.queue_depth() >= options_.router_queue_limit) {
    m_shed_->Increment();
    shard.stats().RecordRejected();
    return FailedFuture(Status::ResourceExhausted(
        StrFormat("shard %d at router queue limit %d", shard_id,
                  options_.router_queue_limit)));
  }
  m_routed_->Increment();
  return shard.Enqueue(tenant, node, deadline_ms);
}

std::future<serve::QueryResult> ServingFabric::Query(int node,
                                                     double deadline_ms) {
  if (partitioned_) {
    // Route by the plan's ownership map, not the hash ring: the owning
    // part is the only one holding the node's final hidden row.
    const std::vector<int>& part_of = partitioned_engine_->plan().part_of;
    if (node < 0 || node >= static_cast<int>(part_of.size())) {
      return FailedFuture(Status::InvalidArgument(
          StrFormat("Query: node %d outside [0, %d)", node,
                    static_cast<int>(part_of.size()))));
    }
    const int part = part_of[node];
    serve::RequestBatcher& batcher = *part_batchers_[part];
    if (options_.router_queue_limit > 0 &&
        batcher.queue_depth() >= options_.router_queue_limit) {
      m_shed_->Increment();
      part_stats_[part]->RecordRejected();
      return FailedFuture(Status::ResourceExhausted(
          StrFormat("part %d at router queue limit %d", part,
                    options_.router_queue_limit)));
    }
    m_routed_->Increment();
    return batcher.Enqueue(node, deadline_ms);
  }
  if (!single_graph_) {
    return FailedFuture(Status::InvalidArgument(
        "Query: fabric is not in single-graph mode (use QueryTenant)"));
  }
  return Route(ring_.ShardForNode(node), kDefaultTenant, node, deadline_ms);
}

std::future<serve::QueryResult> ServingFabric::QueryTenant(
    const std::string& tenant, int node, double deadline_ms) {
  return Route(ring_.ShardForKey(tenant), tenant, node, deadline_ms);
}

Status ServingFabric::Rollout(int version) {
  if (version <= 0) {
    return Status::InvalidArgument(
        StrFormat("Rollout: version %d must be positive", version));
  }
  // Prepare: every shard must be able to serve `version` before any shard
  // flips. Warm failures abort with no observable change anywhere.
  if (partitioned_) {
    // One engine to prepare: warm all per-part layer states for `version`
    // (and reject unsupported families) before the pin flips.
    std::shared_ptr<const serve::ServableModel> model =
        partitioned_registry_->Version(version);
    if (model == nullptr) {
      return Status::NotFound(
          StrFormat("Rollout: version %d is not loaded", version));
    }
    if (options_.warm_on_rollout) {
      Status warmed = partitioned_engine_->Warm(*model);
      if (!warmed.ok()) return warmed;
    }
    pinned_version_.store(version, std::memory_order_release);
    m_rollouts_->Increment();
    return Status::OK();
  }
  if (options_.warm_on_rollout) {
    for (auto& shard : shards_) {
      Status warmed = shard->WarmVersion(version);
      if (!warmed.ok()) return warmed;
    }
  }
  // Commit: one atomic store. Every batch resolves the pin exactly once,
  // so no batch mixes versions and no shard can lag once this returns.
  pinned_version_.store(version, std::memory_order_release);
  m_rollouts_->Increment();
  return Status::OK();
}

StatusOr<uint64_t> ServingFabric::SubmitMutation(const std::string& tenant,
                                                 dyn::Mutation mutation) {
  if (partitioned_) {
    if (tenant != kDefaultTenant) {
      return Status::NotFound(StrFormat(
          "SubmitMutation: partitioned fabric serves only tenant '%s'",
          kDefaultTenant));
    }
    std::lock_guard<std::mutex> lock(partitioned_stream_mu_);
    if (!partitioned_stream_status_.ok()) return partitioned_stream_status_;
    partitioned_pending_.push_back(std::move(mutation));
    return ++partitioned_seq_;
  }
  dyn::StreamingServer* stream =
      shards_[ring_.ShardForKey(tenant)]->stream(tenant);
  if (stream == nullptr) {
    return Status::NotFound(
        StrFormat("SubmitMutation: no stream attached for tenant '%s'",
                  tenant.c_str()));
  }
  return stream->Submit(std::move(mutation));
}

Status ServingFabric::PublishStream(const std::string& tenant) {
  if (partitioned_) {
    if (tenant != kDefaultTenant) {
      return Status::NotFound(StrFormat(
          "PublishStream: partitioned fabric serves only tenant '%s'",
          kDefaultTenant));
    }
    std::lock_guard<std::mutex> lock(partitioned_stream_mu_);
    if (!partitioned_stream_status_.ok()) return partitioned_stream_status_;
    if (partitioned_pending_.empty()) return Status::OK();
    StatusOr<std::pair<dyn::GraphSnapshot, dyn::BatchDelta>> next =
        partitioned_snapshot_.Apply(partitioned_pending_);
    if (!next.ok()) {
      // The whole batch was rejected; drop it so the chain stays clean.
      partitioned_pending_.clear();
      return next.status();
    }
    partitioned_pending_.clear();
    auto [snap, delta] = std::move(next).value();
    Status applied = partitioned_engine_->ApplyDelta(snap, delta);
    if (!applied.ok()) return applied;
    partitioned_snapshot_ = std::move(snap);
    return Status::OK();
  }
  EngineShard& shard = *shards_[ring_.ShardForKey(tenant)];
  dyn::StreamingServer* stream = shard.stream(tenant);
  if (stream == nullptr) {
    return Status::NotFound(
        StrFormat("PublishStream: no stream attached for tenant '%s'",
                  tenant.c_str()));
  }
  StatusOr<dyn::RefreshStats> applied = stream->ApplyPending();
  if (!applied.ok()) return applied.status();
  return shard.PublishStream(tenant);
}

void ServingFabric::Flush() {
  for (auto& shard : shards_) shard->Flush();
  for (auto& batcher : part_batchers_) batcher->Flush();
}

void ServingFabric::Drain() {
  for (auto& shard : shards_) shard->Drain();
  for (auto& batcher : part_batchers_) batcher->Drain();
}

}  // namespace ahg::fabric
