// Sharded multi-tenant serving fabric (ROADMAP open item 3).
//
// Scales src/serve from one InferenceEngine to N engine shards behind a
// consistent-hash router (hash_ring.h). Two deployment modes:
//
//  - Single-graph: ServeGraph() replicates one serving graph across every
//    shard and routes each query by node id, so the shards split the
//    query stream (and its head-GEMM work) while each shard's cache holds
//    the propagation product it serves from. Every shard computes the
//    identical H^(L) through the same deterministic kernels, so sharded
//    answers are bitwise identical to a single engine's — the conformance
//    property tests/fabric_test.cc proves for {1,2,4} shards x {1,2,4}
//    batcher threads over six model families.
//  - Multi-tenant: AddTenant() pins each tenant graph to the shard the
//    ring assigns its name; queries carry the tenant and are routed there.
//    Tenants on one shard share that shard's PropagationCache byte budget
//    under tenant-scoped keys.
//
// Fleet rollout generalizes the PR-2 hot swap: Rollout(v) first verifies
// and cache-warms version v on every shard (prepare), then flips a single
// fleet-wide atomic version pin (commit). Each micro-batch resolves the
// pin exactly once, so a batch is never torn across versions, a query is
// answered entirely by old or entirely by new, and after Rollout returns
// every new batch serves v — no torn reads anywhere in the fleet.
//
// Admission control is layered: the router sheds with ResourceExhausted
// when a shard's queue depth reaches router_queue_limit (backpressure
// before the batcher's own queue_limit gate), and both layers surface
// through src/obs metrics ("fabric.routed", "fabric.shed",
// "fabric.rollouts") plus the per-shard ServeStats.
//
// Streamed mutations (src/dyn) route like queries: SubmitMutation hashes
// the tenant to its owning shard and appends to that tenant's
// StreamingServer; PublishStream folds the stream's latest snapshot into
// the owning shard's engine only.
#ifndef AUTOHENS_FABRIC_FABRIC_H_
#define AUTOHENS_FABRIC_FABRIC_H_

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dyn/mutation.h"
#include "dyn/snapshot.h"
#include "dyn/stream_server.h"
#include "fabric/hash_ring.h"
#include "fabric/shard.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "partition/partitioned_engine.h"
#include "serve/model_registry.h"
#include "util/status.h"

namespace ahg::fabric {

// Tenant name used for the replicated graph in single-graph mode.
inline constexpr char kDefaultTenant[] = "default";

struct FabricOptions {
  int num_shards = 2;
  int virtual_nodes = 64;  // ring points per shard
  // Shard-wide propagation-cache budget shared by the shard's tenants.
  int64_t shard_cache_byte_budget = int64_t{256} << 20;
  // Per-tenant engine settings (shared_cache / cache_scope are overwritten
  // by the shard) and per-tenant batcher settings (model_resolver is
  // overwritten with the fleet version pin).
  serve::EngineOptions engine;
  serve::BatcherOptions batcher;
  // Router backpressure: a query bound for a shard whose queue depth is at
  // or above this limit is shed with ResourceExhausted without touching
  // the batcher. <= 0 disables the router gate (the batcher's queue_limit
  // still applies).
  int router_queue_limit = 0;
  // Rollout prepare phase warms the new version's propagation product on
  // every shard before the flip, so the first post-flip query on each
  // shard pays a row gather instead of a full forward.
  bool warm_on_rollout = true;
  // Partitioner knobs for ServePartitioned (seed, balance epsilon, ...).
  partition::PartitionerOptions partitioner;
};

class ServingFabric {
 public:
  explicit ServingFabric(const FabricOptions& options);

  // Drains every shard.
  ~ServingFabric();

  ServingFabric(const ServingFabric&) = delete;
  ServingFabric& operator=(const ServingFabric&) = delete;

  // --- Setup phase (not concurrent with queries) ---

  // Single-graph mode: replicate `graph` under kDefaultTenant on every
  // shard; Query() routes by node id. Mutually exclusive with AddTenant.
  Status ServeGraph(const Graph* graph, const serve::ModelRegistry* registry);

  // Multi-tenant mode: pin `tenant` to ring-assigned shard.
  Status AddTenant(const std::string& tenant, const Graph* graph,
                   const serve::ModelRegistry* registry);

  // Partitioned mode: edge-cut `graph` into num_shards parts and serve it
  // from ONE PartitionedEngine — each part holds only its owned nodes plus
  // a halo appendix, so fabric-resident memory scales ~1/num_shards
  // instead of replicating the graph per shard. Query() routes by the
  // plan's node->part assignment to a per-part batcher; answers are
  // bitwise identical to the replicated modes. Only kGcn/kSgc models can
  // roll out here. Mutually exclusive with ServeGraph and AddTenant.
  // `graph` and `registry` must outlive the fabric.
  Status ServePartitioned(const Graph* graph,
                          const serve::ModelRegistry* registry);

  // Binds a tenant's dynamic-graph stream to its owning shard.
  Status AttachStream(const std::string& tenant, dyn::StreamingServer* stream);

  // --- Serving phase (thread-safe) ---

  // Routes a single-graph-mode query by node id.
  std::future<serve::QueryResult> Query(int node, double deadline_ms = 0.0);

  // Routes a query to `tenant`'s shard. Unknown tenants fail NotFound.
  std::future<serve::QueryResult> QueryTenant(const std::string& tenant,
                                              int node,
                                              double deadline_ms = 0.0);

  // Fleet-wide atomic rollout (see file comment). All-or-nothing: when any
  // shard cannot serve `version`, no shard is flipped. `version` must be
  // loaded in each tenant's registry (call Refresh() first).
  Status Rollout(int version);

  // Current fleet pin; 0 means "registry Active()" (no rollout yet).
  int pinned_version() const {
    return pinned_version_.load(std::memory_order_acquire);
  }

  // Routes a streamed mutation to the tenant's owning shard; returns its
  // sequence number in that tenant's stream. In partitioned mode (tenant
  // kDefaultTenant) the mutation queues against the fabric's snapshot
  // chain instead.
  StatusOr<uint64_t> SubmitMutation(const std::string& tenant,
                                    dyn::Mutation mutation);

  // Applies the tenant's pending mutations and publishes the resulting
  // snapshot into the owning shard's engine. In partitioned mode the batch
  // steps the snapshot chain and routes the delta through the plan
  // (PartitionedEngine::ApplyDelta) — every warmed version is refreshed
  // over its dirty sets with per-stage halo exchange.
  Status PublishStream(const std::string& tenant);

  // --- Introspection ---

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int ShardOfNode(int node) const { return ring_.ShardForNode(node); }
  int ShardOfTenant(const std::string& tenant) const {
    return ring_.ShardForKey(tenant);
  }
  EngineShard& shard(int shard_id) { return *shards_[shard_id]; }
  const EngineShard& shard(int shard_id) const { return *shards_[shard_id]; }
  const ConsistentHashRing& ring() const { return ring_; }

  // Null unless ServePartitioned was called.
  partition::PartitionedEngine* partitioned_engine() {
    return partitioned_engine_.get();
  }
  // Per-part admission/latency stats (partitioned mode only).
  serve::ServeStats& part_stats(int part) { return *part_stats_[part]; }

  void Flush();
  void Drain();

 private:
  std::future<serve::QueryResult> Route(int shard_id,
                                        const std::string& tenant, int node,
                                        double deadline_ms);

  // Immediately-ready future carrying an error result.
  static std::future<serve::QueryResult> FailedFuture(Status status);

  FabricOptions options_;
  ConsistentHashRing ring_;
  std::vector<std::unique_ptr<EngineShard>> shards_;
  std::atomic<int> pinned_version_{0};
  bool single_graph_ = false;
  bool multi_tenant_ = false;

  // Partitioned mode: one engine, one batcher + stats per part, and a
  // snapshot chain for streamed mutations. The snapshot is built eagerly
  // at ServePartitioned; when the graph is incompatible with snapshots
  // (directed, self loops) serving still works and mutation submission
  // fails with the stored status.
  bool partitioned_ = false;
  const serve::ModelRegistry* partitioned_registry_ = nullptr;
  std::unique_ptr<partition::PartitionedEngine> partitioned_engine_;
  std::vector<std::unique_ptr<serve::ServeStats>> part_stats_;
  std::vector<std::unique_ptr<serve::RequestBatcher>> part_batchers_;
  dyn::GraphSnapshot partitioned_snapshot_;
  Status partitioned_stream_status_;
  std::vector<dyn::Mutation> partitioned_pending_;
  uint64_t partitioned_seq_ = 0;
  std::mutex partitioned_stream_mu_;

  obs::Counter* const m_routed_;
  obs::Counter* const m_shed_;
  obs::Counter* const m_rollouts_;
};

}  // namespace ahg::fabric

#endif  // AUTOHENS_FABRIC_FABRIC_H_
