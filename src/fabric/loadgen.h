// Seeded, deterministic traffic simulator for the serving fabric.
//
// GNNBENCH (arXiv 2404.04118) documents how un-harnessed GNN-system
// comparisons report wrong numbers; this module is the harness half of
// bench/fabric_load: every arrival is a pure function of TrafficOptions
// (fixed seed => identical schedule, bit for bit), so two fabric
// configurations replay the *same* workload and their numbers are
// comparable. tests/loadgen_test.cc pins the reproducibility and the
// documented arrival statistics.
//
// Workload model:
//  - Node popularity is zipfian (exponent s over node rank), the standard
//    skew for user-facing traffic: a small hot set dominates, exercising
//    the cache, while the tail keeps touching cold rows.
//  - Tenant choice is categorical over `tenant_weights` (mixed tenant
//    sizes; empty = single tenant 0).
//  - Open loop: arrivals follow a non-homogeneous Poisson process whose
//    rate envelope is a diurnal sinusoid scaled by burst windows —
//    arrivals keep coming regardless of completions, the load pattern
//    that exposes queueing collapse (closed-loop harnesses hide it).
//  - Closed loop: `closed_loop_clients` clients each issue a query, wait
//    for the answer, think, repeat — the pattern that measures saturation
//    throughput. Each client draws from an independently forked stream,
//    so schedules stay deterministic for any client interleaving.
#ifndef AUTOHENS_FABRIC_LOADGEN_H_
#define AUTOHENS_FABRIC_LOADGEN_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace ahg::fabric {

// Draws ranks in [0, n) with P(rank = k) proportional to (k+1)^-s via an
// exact precomputed CDF (O(log n) per draw). s = 0 is uniform.
class ZipfianSampler {
 public:
  ZipfianSampler(int num_items, double exponent);

  int Sample(Rng* rng) const;

  // P(rank = k), exact.
  double Probability(int rank) const;

  int num_items() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

struct TrafficOptions {
  uint64_t seed = 1;
  int num_nodes = 1000;
  double zipf_exponent = 0.99;
  // Tenant mix; empty means every arrival is tenant 0. Weights need not
  // be normalized.
  std::vector<double> tenant_weights;

  // Open-loop envelope: rate(t) = base_qps * (1 + diurnal_amplitude *
  // sin(2*pi*t / diurnal_period_s)) * (burst_multiplier inside a burst
  // window, 1 outside). `num_bursts` windows of total length
  // burst_fraction * duration_s are placed deterministically from seed.
  double duration_s = 1.0;
  double base_qps = 1000.0;
  double diurnal_amplitude = 0.5;   // in [0, 1)
  double diurnal_period_s = 1.0;    // one compressed "day"
  double burst_multiplier = 1.0;    // >= 1; 1 disables bursts
  double burst_fraction = 0.0;      // fraction of duration inside bursts
  int num_bursts = 4;

  // Closed loop.
  int closed_loop_clients = 8;
  double think_time_ms = 0.0;
};

struct Arrival {
  double time_ms = 0.0;  // offset from schedule start (open loop)
  int tenant = 0;
  int node = 0;
};

class TrafficSimulator {
 public:
  explicit TrafficSimulator(const TrafficOptions& options);

  // Open-loop arrival rate envelope at simulated time `t_s` (queries/s).
  double RateAt(double t_s) const;

  // The full open-loop schedule over [0, duration_s): a thinned Poisson
  // draw against the envelope. Pure function of the options.
  std::vector<Arrival> OpenLoopSchedule() const;

  // Expected open-loop arrival count: the numerically integrated envelope.
  double ExpectedOpenLoopArrivals() const;

  // Next query for closed-loop client `client` (0-based, < clients());
  // Arrival::time_ms is 0 (closed-loop timing is completion-driven).
  // Deterministic per client and independent across clients.
  Arrival NextQuery(int client);

  // Burst windows [start_s, end_s), ascending, derived from the seed.
  const std::vector<std::pair<double, double>>& bursts() const {
    return bursts_;
  }

  int clients() const { return static_cast<int>(client_rngs_.size()); }
  const ZipfianSampler& zipf() const { return zipf_; }

 private:
  Arrival Draw(Rng* rng) const;

  TrafficOptions options_;
  ZipfianSampler zipf_;
  std::vector<double> tenant_cdf_;  // empty for single-tenant traffic
  std::vector<std::pair<double, double>> bursts_;
  std::vector<Rng> client_rngs_;
};

}  // namespace ahg::fabric

#endif  // AUTOHENS_FABRIC_LOADGEN_H_
