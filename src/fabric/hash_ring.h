// Consistent-hash ring routing query traffic over engine shards.
//
// Each shard projects `virtual_nodes` points onto a 64-bit ring; a key is
// routed to the shard owning the first ring point at or after the key's
// hash (wrapping). Virtual nodes smooth the per-shard key share toward
// K/N, and consistency bounds the churn of topology changes: adding a
// shard to an N-shard ring reclaims only the key ranges that fall to the
// new shard's points — in expectation K/(N+1) keys move and every other
// key keeps its shard (tests/fabric_test.cc proves both properties).
//
// Hashing is a fixed FNV-1a / splitmix64 pipeline with no platform- or
// process-dependent state, so a routing table is reproducible across runs,
// machines, and thread counts — a prerequisite for the fabric's bitwise
// conformance argument (DESIGN.md "Sharded serving fabric").
#ifndef AUTOHENS_FABRIC_HASH_RING_H_
#define AUTOHENS_FABRIC_HASH_RING_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ahg::fabric {

// Stable 64-bit hash of an arbitrary byte string (FNV-1a core, splitmix64
// finalizer for avalanche). Deterministic across platforms.
uint64_t StableHash64(const void* data, size_t size);
uint64_t StableHash64(const std::string& key);

// Stable 64-bit mix of an integer key (node ids), endian-independent.
uint64_t StableHash64(int64_t key);

class ConsistentHashRing {
 public:
  // `virtual_nodes` ring points per shard (clamped to >= 1).
  explicit ConsistentHashRing(int virtual_nodes = 64);

  // Adds shard `shard_id` (>= 0, not already present) to the ring.
  void AddShard(int shard_id);

  // Removes `shard_id`; returns false when it was not on the ring.
  bool RemoveShard(int shard_id);

  // Shard owning `key`. The ring must be non-empty. Pure function of the
  // ring contents — safe to call concurrently with other lookups.
  int ShardForKey(const std::string& key) const;

  // Shard owning integer key `node` (node-id routing in single-graph mode).
  int ShardForNode(int64_t node) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int virtual_nodes() const { return virtual_nodes_; }

  // Shard ids, ascending.
  std::vector<int> shard_ids() const { return shards_; }

 private:
  int ShardForHash(uint64_t hash) const;

  int virtual_nodes_;
  std::vector<int> shards_;  // sorted shard ids
  // Ring points sorted by hash; ties broken by shard id (insertion keeps
  // the vector sorted, so lookups are one binary search).
  std::vector<std::pair<uint64_t, int>> ring_;
};

}  // namespace ahg::fabric

#endif  // AUTOHENS_FABRIC_HASH_RING_H_
