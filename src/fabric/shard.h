// One engine shard of the serving fabric.
//
// A shard owns the serving machinery for every tenant pinned to it: per
// tenant an InferenceEngine and a RequestBatcher, all sharing one
// shard-level PropagationCache (a single LRU byte budget per shard, with
// tenant-scoped keys so products never collide — see EngineOptions) and
// one shard-level ServeStats (per-shard p50/p99, cache hit rate, and
// admission counters, the numbers bench/fabric_load reports per shard).
// In single-graph mode a shard hosts exactly one tenant whose graph is the
// shared serving graph; in multi-tenant mode it hosts whichever tenants
// the router's hash ring pinned to it.
#ifndef AUTOHENS_FABRIC_SHARD_H_
#define AUTOHENS_FABRIC_SHARD_H_

#include <future>
#include <map>
#include <memory>
#include <string>

#include "dyn/stream_server.h"
#include "graph/graph.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "serve/propagation_cache.h"
#include "serve/request_batcher.h"
#include "serve/serve_stats.h"
#include "util/status.h"

namespace ahg::fabric {

class EngineShard {
 public:
  // `cache_byte_budget` is the shard-wide LRU budget shared by every
  // tenant engine on this shard (<= 0 unbounded).
  EngineShard(int shard_id, int64_t cache_byte_budget);

  EngineShard(const EngineShard&) = delete;
  EngineShard& operator=(const EngineShard&) = delete;

  // Installs `tenant` on this shard: an engine over `graph` (cache keys
  // scoped by the tenant name) and a batcher resolving models through
  // `batcher_options.model_resolver` (set by the fabric to the fleet
  // version pin). `graph` and `registry` must outlive the shard. Fails on
  // a duplicate tenant name.
  Status AddTenant(const std::string& tenant, const Graph* graph,
                   const serve::ModelRegistry* registry,
                   serve::EngineOptions engine_options,
                   serve::BatcherOptions batcher_options);

  bool HasTenant(const std::string& tenant) const;

  // Enqueues a query on the tenant's batcher. The tenant must exist.
  std::future<serve::QueryResult> Enqueue(const std::string& tenant, int node,
                                          double deadline_ms);

  // Admitted-but-unanswered requests across all tenant batchers — the
  // router's queue-depth gate reads this before enqueueing.
  int queue_depth() const;

  // Rollout prepare phase: verifies every tenant's registry has `version`
  // and warms each engine's propagation product for it, so the fleet flip
  // lands on shards that can all serve the new version from cache.
  Status WarmVersion(int version);

  // Dynamic-graph bridge. AttachStream binds a tenant to its streaming
  // server; PublishStream materializes the stream's latest snapshot into
  // the tenant's engine (SwapGraph + InstallHiddenStates).
  Status AttachStream(const std::string& tenant, dyn::StreamingServer* stream);
  dyn::StreamingServer* stream(const std::string& tenant) const;
  Status PublishStream(const std::string& tenant);

  serve::InferenceEngine* engine(const std::string& tenant);
  serve::ServeStats& stats() { return stats_; }
  const serve::PropagationCache& cache() const { return cache_; }
  int id() const { return shard_id_; }
  int num_tenants() const { return static_cast<int>(tenants_.size()); }

  void Flush();
  void Drain();

 private:
  struct Tenant {
    const Graph* graph = nullptr;
    const serve::ModelRegistry* registry = nullptr;
    std::unique_ptr<serve::InferenceEngine> engine;
    std::unique_ptr<serve::RequestBatcher> batcher;
    dyn::StreamingServer* stream = nullptr;  // not owned
  };

  const Tenant* FindTenant(const std::string& tenant) const;

  const int shard_id_;
  serve::PropagationCache cache_;
  serve::ServeStats stats_;
  // Tenant set is fixed before traffic starts (fabric setup phase), so the
  // query path reads the map without a lock.
  std::map<std::string, Tenant> tenants_;
};

}  // namespace ahg::fabric

#endif  // AUTOHENS_FABRIC_SHARD_H_
