#include "fabric/hash_ring.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace ahg::fabric {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t StableHash64(const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = kFnvOffset;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return SplitMix64(hash);
}

uint64_t StableHash64(const std::string& key) {
  return StableHash64(key.data(), key.size());
}

uint64_t StableHash64(int64_t key) {
  // Value-based (not byte-based), so the result is endian-independent.
  return SplitMix64(static_cast<uint64_t>(key) ^ 0x517cc1b727220a95ULL);
}

ConsistentHashRing::ConsistentHashRing(int virtual_nodes)
    : virtual_nodes_(std::max(1, virtual_nodes)) {}

void ConsistentHashRing::AddShard(int shard_id) {
  AHG_CHECK_GE(shard_id, 0);
  AHG_CHECK(!std::binary_search(shards_.begin(), shards_.end(), shard_id));
  shards_.insert(
      std::lower_bound(shards_.begin(), shards_.end(), shard_id), shard_id);
  ring_.reserve(ring_.size() + static_cast<size_t>(virtual_nodes_));
  for (int v = 0; v < virtual_nodes_; ++v) {
    const std::string point = StrFormat("shard-%d#%d", shard_id, v);
    const std::pair<uint64_t, int> entry(StableHash64(point), shard_id);
    ring_.insert(std::lower_bound(ring_.begin(), ring_.end(), entry), entry);
  }
}

bool ConsistentHashRing::RemoveShard(int shard_id) {
  auto it = std::lower_bound(shards_.begin(), shards_.end(), shard_id);
  if (it == shards_.end() || *it != shard_id) return false;
  shards_.erase(it);
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [shard_id](const std::pair<uint64_t, int>& p) {
                               return p.second == shard_id;
                             }),
              ring_.end());
  return true;
}

int ConsistentHashRing::ShardForHash(uint64_t hash) const {
  AHG_CHECK(!ring_.empty());
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const std::pair<uint64_t, int>& p, uint64_t h) { return p.first < h; });
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

int ConsistentHashRing::ShardForKey(const std::string& key) const {
  return ShardForHash(StableHash64(key));
}

int ConsistentHashRing::ShardForNode(int64_t node) const {
  return ShardForHash(StableHash64(node));
}

}  // namespace ahg::fabric
