# Empty compiler generated dependencies file for autograph_cli.
# This may be replaced when dependencies are built.
