file(REMOVE_RECURSE
  "CMakeFiles/autograph_cli.dir/autograph_cli.cpp.o"
  "CMakeFiles/autograph_cli.dir/autograph_cli.cpp.o.d"
  "autograph_cli"
  "autograph_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograph_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
