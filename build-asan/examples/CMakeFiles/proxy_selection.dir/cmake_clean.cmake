file(REMOVE_RECURSE
  "CMakeFiles/proxy_selection.dir/proxy_selection.cpp.o"
  "CMakeFiles/proxy_selection.dir/proxy_selection.cpp.o.d"
  "proxy_selection"
  "proxy_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
