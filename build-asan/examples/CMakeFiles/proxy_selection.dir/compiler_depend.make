# Empty compiler generated dependencies file for proxy_selection.
# This may be replaced when dependencies are built.
