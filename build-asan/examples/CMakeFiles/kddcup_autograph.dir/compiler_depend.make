# Empty compiler generated dependencies file for kddcup_autograph.
# This may be replaced when dependencies are built.
