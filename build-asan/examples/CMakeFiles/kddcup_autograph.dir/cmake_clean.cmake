file(REMOVE_RECURSE
  "CMakeFiles/kddcup_autograph.dir/kddcup_autograph.cpp.o"
  "CMakeFiles/kddcup_autograph.dir/kddcup_autograph.cpp.o.d"
  "kddcup_autograph"
  "kddcup_autograph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kddcup_autograph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
