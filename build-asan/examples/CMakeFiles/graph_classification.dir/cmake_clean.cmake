file(REMOVE_RECURSE
  "CMakeFiles/graph_classification.dir/graph_classification.cpp.o"
  "CMakeFiles/graph_classification.dir/graph_classification.cpp.o.d"
  "graph_classification"
  "graph_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
