# Empty compiler generated dependencies file for graph_classification.
# This may be replaced when dependencies are built.
