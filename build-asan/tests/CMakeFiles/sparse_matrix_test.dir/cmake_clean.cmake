file(REMOVE_RECURSE
  "CMakeFiles/sparse_matrix_test.dir/sparse_matrix_test.cc.o"
  "CMakeFiles/sparse_matrix_test.dir/sparse_matrix_test.cc.o.d"
  "sparse_matrix_test"
  "sparse_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
