file(REMOVE_RECURSE
  "CMakeFiles/autodiff_basic_test.dir/autodiff_basic_test.cc.o"
  "CMakeFiles/autodiff_basic_test.dir/autodiff_basic_test.cc.o.d"
  "autodiff_basic_test"
  "autodiff_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autodiff_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
