# Empty dependencies file for autodiff_basic_test.
# This may be replaced when dependencies are built.
