file(REMOVE_RECURSE
  "CMakeFiles/thread_pool_stress_test.dir/thread_pool_stress_test.cc.o"
  "CMakeFiles/thread_pool_stress_test.dir/thread_pool_stress_test.cc.o.d"
  "thread_pool_stress_test"
  "thread_pool_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_pool_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
