# Empty dependencies file for minibatch_test.
# This may be replaced when dependencies are built.
