file(REMOVE_RECURSE
  "CMakeFiles/minibatch_test.dir/minibatch_test.cc.o"
  "CMakeFiles/minibatch_test.dir/minibatch_test.cc.o.d"
  "minibatch_test"
  "minibatch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minibatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
