# Empty dependencies file for graph_set_test.
# This may be replaced when dependencies are built.
