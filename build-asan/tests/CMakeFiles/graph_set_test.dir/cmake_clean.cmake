file(REMOVE_RECURSE
  "CMakeFiles/graph_set_test.dir/graph_set_test.cc.o"
  "CMakeFiles/graph_set_test.dir/graph_set_test.cc.o.d"
  "graph_set_test"
  "graph_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
