file(REMOVE_RECURSE
  "CMakeFiles/graph_ops_gradcheck_test.dir/graph_ops_gradcheck_test.cc.o"
  "CMakeFiles/graph_ops_gradcheck_test.dir/graph_ops_gradcheck_test.cc.o.d"
  "graph_ops_gradcheck_test"
  "graph_ops_gradcheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_ops_gradcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
