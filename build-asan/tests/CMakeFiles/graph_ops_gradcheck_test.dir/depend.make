# Empty dependencies file for graph_ops_gradcheck_test.
# This may be replaced when dependencies are built.
