# Empty compiler generated dependencies file for trained_ensemble_test.
# This may be replaced when dependencies are built.
