file(REMOVE_RECURSE
  "CMakeFiles/trained_ensemble_test.dir/trained_ensemble_test.cc.o"
  "CMakeFiles/trained_ensemble_test.dir/trained_ensemble_test.cc.o.d"
  "trained_ensemble_test"
  "trained_ensemble_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trained_ensemble_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
