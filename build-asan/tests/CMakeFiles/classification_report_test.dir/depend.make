# Empty dependencies file for classification_report_test.
# This may be replaced when dependencies are built.
