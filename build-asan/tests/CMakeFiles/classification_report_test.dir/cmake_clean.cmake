file(REMOVE_RECURSE
  "CMakeFiles/classification_report_test.dir/classification_report_test.cc.o"
  "CMakeFiles/classification_report_test.dir/classification_report_test.cc.o.d"
  "classification_report_test"
  "classification_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classification_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
