file(REMOVE_RECURSE
  "CMakeFiles/parallel_proxy_test.dir/parallel_proxy_test.cc.o"
  "CMakeFiles/parallel_proxy_test.dir/parallel_proxy_test.cc.o.d"
  "parallel_proxy_test"
  "parallel_proxy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_proxy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
