# Empty dependencies file for parallel_proxy_test.
# This may be replaced when dependencies are built.
