file(REMOVE_RECURSE
  "CMakeFiles/autodiff_gradcheck_test.dir/autodiff_gradcheck_test.cc.o"
  "CMakeFiles/autodiff_gradcheck_test.dir/autodiff_gradcheck_test.cc.o.d"
  "autodiff_gradcheck_test"
  "autodiff_gradcheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autodiff_gradcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
