file(REMOVE_RECURSE
  "CMakeFiles/parallel_kernels_test.dir/parallel_kernels_test.cc.o"
  "CMakeFiles/parallel_kernels_test.dir/parallel_kernels_test.cc.o.d"
  "parallel_kernels_test"
  "parallel_kernels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
