file(REMOVE_RECURSE
  "CMakeFiles/model_gradcheck_test.dir/model_gradcheck_test.cc.o"
  "CMakeFiles/model_gradcheck_test.dir/model_gradcheck_test.cc.o.d"
  "model_gradcheck_test"
  "model_gradcheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_gradcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
