file(REMOVE_RECURSE
  "libautohens.a"
)
