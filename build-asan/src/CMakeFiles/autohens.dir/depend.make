# Empty dependencies file for autohens.
# This may be replaced when dependencies are built.
