
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autodiff/graph_ops.cc" "src/CMakeFiles/autohens.dir/autodiff/graph_ops.cc.o" "gcc" "src/CMakeFiles/autohens.dir/autodiff/graph_ops.cc.o.d"
  "/root/repo/src/autodiff/ops.cc" "src/CMakeFiles/autohens.dir/autodiff/ops.cc.o" "gcc" "src/CMakeFiles/autohens.dir/autodiff/ops.cc.o.d"
  "/root/repo/src/autodiff/variable.cc" "src/CMakeFiles/autohens.dir/autodiff/variable.cc.o" "gcc" "src/CMakeFiles/autohens.dir/autodiff/variable.cc.o.d"
  "/root/repo/src/core/autohens.cc" "src/CMakeFiles/autohens.dir/core/autohens.cc.o" "gcc" "src/CMakeFiles/autohens.dir/core/autohens.cc.o.d"
  "/root/repo/src/core/correct_smooth.cc" "src/CMakeFiles/autohens.dir/core/correct_smooth.cc.o" "gcc" "src/CMakeFiles/autohens.dir/core/correct_smooth.cc.o.d"
  "/root/repo/src/core/gse.cc" "src/CMakeFiles/autohens.dir/core/gse.cc.o" "gcc" "src/CMakeFiles/autohens.dir/core/gse.cc.o.d"
  "/root/repo/src/core/hierarchical.cc" "src/CMakeFiles/autohens.dir/core/hierarchical.cc.o" "gcc" "src/CMakeFiles/autohens.dir/core/hierarchical.cc.o.d"
  "/root/repo/src/core/nas_random.cc" "src/CMakeFiles/autohens.dir/core/nas_random.cc.o" "gcc" "src/CMakeFiles/autohens.dir/core/nas_random.cc.o.d"
  "/root/repo/src/core/proxy_eval.cc" "src/CMakeFiles/autohens.dir/core/proxy_eval.cc.o" "gcc" "src/CMakeFiles/autohens.dir/core/proxy_eval.cc.o.d"
  "/root/repo/src/core/search_adaptive.cc" "src/CMakeFiles/autohens.dir/core/search_adaptive.cc.o" "gcc" "src/CMakeFiles/autohens.dir/core/search_adaptive.cc.o.d"
  "/root/repo/src/core/search_gradient.cc" "src/CMakeFiles/autohens.dir/core/search_gradient.cc.o" "gcc" "src/CMakeFiles/autohens.dir/core/search_gradient.cc.o.d"
  "/root/repo/src/core/trained_ensemble.cc" "src/CMakeFiles/autohens.dir/core/trained_ensemble.cc.o" "gcc" "src/CMakeFiles/autohens.dir/core/trained_ensemble.cc.o.d"
  "/root/repo/src/ensemble/baselines.cc" "src/CMakeFiles/autohens.dir/ensemble/baselines.cc.o" "gcc" "src/CMakeFiles/autohens.dir/ensemble/baselines.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/autohens.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/autohens.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_set.cc" "src/CMakeFiles/autohens.dir/graph/graph_set.cc.o" "gcc" "src/CMakeFiles/autohens.dir/graph/graph_set.cc.o.d"
  "/root/repo/src/graph/sampling.cc" "src/CMakeFiles/autohens.dir/graph/sampling.cc.o" "gcc" "src/CMakeFiles/autohens.dir/graph/sampling.cc.o.d"
  "/root/repo/src/graph/split.cc" "src/CMakeFiles/autohens.dir/graph/split.cc.o" "gcc" "src/CMakeFiles/autohens.dir/graph/split.cc.o.d"
  "/root/repo/src/graph/statistics.cc" "src/CMakeFiles/autohens.dir/graph/statistics.cc.o" "gcc" "src/CMakeFiles/autohens.dir/graph/statistics.cc.o.d"
  "/root/repo/src/graph/synthetic.cc" "src/CMakeFiles/autohens.dir/graph/synthetic.cc.o" "gcc" "src/CMakeFiles/autohens.dir/graph/synthetic.cc.o.d"
  "/root/repo/src/io/autograph_format.cc" "src/CMakeFiles/autohens.dir/io/autograph_format.cc.o" "gcc" "src/CMakeFiles/autohens.dir/io/autograph_format.cc.o.d"
  "/root/repo/src/io/model_store.cc" "src/CMakeFiles/autohens.dir/io/model_store.cc.o" "gcc" "src/CMakeFiles/autohens.dir/io/model_store.cc.o.d"
  "/root/repo/src/metrics/aggregate.cc" "src/CMakeFiles/autohens.dir/metrics/aggregate.cc.o" "gcc" "src/CMakeFiles/autohens.dir/metrics/aggregate.cc.o.d"
  "/root/repo/src/metrics/classification_report.cc" "src/CMakeFiles/autohens.dir/metrics/classification_report.cc.o" "gcc" "src/CMakeFiles/autohens.dir/metrics/classification_report.cc.o.d"
  "/root/repo/src/metrics/kendall.cc" "src/CMakeFiles/autohens.dir/metrics/kendall.cc.o" "gcc" "src/CMakeFiles/autohens.dir/metrics/kendall.cc.o.d"
  "/root/repo/src/metrics/metrics.cc" "src/CMakeFiles/autohens.dir/metrics/metrics.cc.o" "gcc" "src/CMakeFiles/autohens.dir/metrics/metrics.cc.o.d"
  "/root/repo/src/metrics/wilcoxon.cc" "src/CMakeFiles/autohens.dir/metrics/wilcoxon.cc.o" "gcc" "src/CMakeFiles/autohens.dir/metrics/wilcoxon.cc.o.d"
  "/root/repo/src/models/agnn.cc" "src/CMakeFiles/autohens.dir/models/agnn.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/agnn.cc.o.d"
  "/root/repo/src/models/appnp.cc" "src/CMakeFiles/autohens.dir/models/appnp.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/appnp.cc.o.d"
  "/root/repo/src/models/arma.cc" "src/CMakeFiles/autohens.dir/models/arma.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/arma.cc.o.d"
  "/root/repo/src/models/chebnet.cc" "src/CMakeFiles/autohens.dir/models/chebnet.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/chebnet.cc.o.d"
  "/root/repo/src/models/dagnn.cc" "src/CMakeFiles/autohens.dir/models/dagnn.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/dagnn.cc.o.d"
  "/root/repo/src/models/gat.cc" "src/CMakeFiles/autohens.dir/models/gat.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/gat.cc.o.d"
  "/root/repo/src/models/gated_gnn.cc" "src/CMakeFiles/autohens.dir/models/gated_gnn.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/gated_gnn.cc.o.d"
  "/root/repo/src/models/gcn.cc" "src/CMakeFiles/autohens.dir/models/gcn.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/gcn.cc.o.d"
  "/root/repo/src/models/gcnii.cc" "src/CMakeFiles/autohens.dir/models/gcnii.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/gcnii.cc.o.d"
  "/root/repo/src/models/gin.cc" "src/CMakeFiles/autohens.dir/models/gin.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/gin.cc.o.d"
  "/root/repo/src/models/graph_level.cc" "src/CMakeFiles/autohens.dir/models/graph_level.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/graph_level.cc.o.d"
  "/root/repo/src/models/graphsage.cc" "src/CMakeFiles/autohens.dir/models/graphsage.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/graphsage.cc.o.d"
  "/root/repo/src/models/jknet.cc" "src/CMakeFiles/autohens.dir/models/jknet.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/jknet.cc.o.d"
  "/root/repo/src/models/link_encoder.cc" "src/CMakeFiles/autohens.dir/models/link_encoder.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/link_encoder.cc.o.d"
  "/root/repo/src/models/mixhop.cc" "src/CMakeFiles/autohens.dir/models/mixhop.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/mixhop.cc.o.d"
  "/root/repo/src/models/mlp.cc" "src/CMakeFiles/autohens.dir/models/mlp.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/mlp.cc.o.d"
  "/root/repo/src/models/model.cc" "src/CMakeFiles/autohens.dir/models/model.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/model.cc.o.d"
  "/root/repo/src/models/model_zoo.cc" "src/CMakeFiles/autohens.dir/models/model_zoo.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/model_zoo.cc.o.d"
  "/root/repo/src/models/sgc.cc" "src/CMakeFiles/autohens.dir/models/sgc.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/sgc.cc.o.d"
  "/root/repo/src/models/tagcn.cc" "src/CMakeFiles/autohens.dir/models/tagcn.cc.o" "gcc" "src/CMakeFiles/autohens.dir/models/tagcn.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/autohens.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/autohens.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/autohens.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/autohens.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/autohens.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/autohens.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/parameter_store.cc" "src/CMakeFiles/autohens.dir/nn/parameter_store.cc.o" "gcc" "src/CMakeFiles/autohens.dir/nn/parameter_store.cc.o.d"
  "/root/repo/src/tasks/train_graph.cc" "src/CMakeFiles/autohens.dir/tasks/train_graph.cc.o" "gcc" "src/CMakeFiles/autohens.dir/tasks/train_graph.cc.o.d"
  "/root/repo/src/tasks/train_link.cc" "src/CMakeFiles/autohens.dir/tasks/train_link.cc.o" "gcc" "src/CMakeFiles/autohens.dir/tasks/train_link.cc.o.d"
  "/root/repo/src/tasks/train_node.cc" "src/CMakeFiles/autohens.dir/tasks/train_node.cc.o" "gcc" "src/CMakeFiles/autohens.dir/tasks/train_node.cc.o.d"
  "/root/repo/src/tasks/train_node_minibatch.cc" "src/CMakeFiles/autohens.dir/tasks/train_node_minibatch.cc.o" "gcc" "src/CMakeFiles/autohens.dir/tasks/train_node_minibatch.cc.o.d"
  "/root/repo/src/tensor/alloc_tracker.cc" "src/CMakeFiles/autohens.dir/tensor/alloc_tracker.cc.o" "gcc" "src/CMakeFiles/autohens.dir/tensor/alloc_tracker.cc.o.d"
  "/root/repo/src/tensor/matrix.cc" "src/CMakeFiles/autohens.dir/tensor/matrix.cc.o" "gcc" "src/CMakeFiles/autohens.dir/tensor/matrix.cc.o.d"
  "/root/repo/src/tensor/sparse_matrix.cc" "src/CMakeFiles/autohens.dir/tensor/sparse_matrix.cc.o" "gcc" "src/CMakeFiles/autohens.dir/tensor/sparse_matrix.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/autohens.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/autohens.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/autohens.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/autohens.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/autohens.dir/util/status.cc.o" "gcc" "src/CMakeFiles/autohens.dir/util/status.cc.o.d"
  "/root/repo/src/util/stopwatch.cc" "src/CMakeFiles/autohens.dir/util/stopwatch.cc.o" "gcc" "src/CMakeFiles/autohens.dir/util/stopwatch.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/autohens.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/autohens.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/autohens.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/autohens.dir/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
