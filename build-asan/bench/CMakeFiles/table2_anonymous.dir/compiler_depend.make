# Empty compiler generated dependencies file for table2_anonymous.
# This may be replaced when dependencies are built.
