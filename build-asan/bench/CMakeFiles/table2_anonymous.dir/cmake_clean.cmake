file(REMOVE_RECURSE
  "CMakeFiles/table2_anonymous.dir/table2_anonymous.cc.o"
  "CMakeFiles/table2_anonymous.dir/table2_anonymous.cc.o.d"
  "table2_anonymous"
  "table2_anonymous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_anonymous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
