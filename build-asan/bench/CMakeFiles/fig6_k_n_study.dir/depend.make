# Empty dependencies file for fig6_k_n_study.
# This may be replaced when dependencies are built.
