file(REMOVE_RECURSE
  "CMakeFiles/fig6_k_n_study.dir/fig6_k_n_study.cc.o"
  "CMakeFiles/fig6_k_n_study.dir/fig6_k_n_study.cc.o.d"
  "fig6_k_n_study"
  "fig6_k_n_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_k_n_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
