# Empty compiler generated dependencies file for fig4_init_variance.
# This may be replaced when dependencies are built.
