file(REMOVE_RECURSE
  "CMakeFiles/fig4_init_variance.dir/fig4_init_variance.cc.o"
  "CMakeFiles/fig4_init_variance.dir/fig4_init_variance.cc.o.d"
  "fig4_init_variance"
  "fig4_init_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_init_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
