file(REMOVE_RECURSE
  "CMakeFiles/table6_runtime.dir/table6_runtime.cc.o"
  "CMakeFiles/table6_runtime.dir/table6_runtime.cc.o.d"
  "table6_runtime"
  "table6_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
