# Empty compiler generated dependencies file for table6_runtime.
# This may be replaced when dependencies are built.
