# Empty compiler generated dependencies file for fig8_pool_size_time.
# This may be replaced when dependencies are built.
