file(REMOVE_RECURSE
  "CMakeFiles/fig8_pool_size_time.dir/fig8_pool_size_time.cc.o"
  "CMakeFiles/fig8_pool_size_time.dir/fig8_pool_size_time.cc.o.d"
  "fig8_pool_size_time"
  "fig8_pool_size_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_pool_size_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
