# Empty dependencies file for fig3_proxy_eval.
# This may be replaced when dependencies are built.
