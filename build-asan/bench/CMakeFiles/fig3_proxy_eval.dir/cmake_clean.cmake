file(REMOVE_RECURSE
  "CMakeFiles/fig3_proxy_eval.dir/fig3_proxy_eval.cc.o"
  "CMakeFiles/fig3_proxy_eval.dir/fig3_proxy_eval.cc.o.d"
  "fig3_proxy_eval"
  "fig3_proxy_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_proxy_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
