# Empty compiler generated dependencies file for table8_edge_prediction.
# This may be replaced when dependencies are built.
