file(REMOVE_RECURSE
  "CMakeFiles/table8_edge_prediction.dir/table8_edge_prediction.cc.o"
  "CMakeFiles/table8_edge_prediction.dir/table8_edge_prediction.cc.o.d"
  "table8_edge_prediction"
  "table8_edge_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_edge_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
