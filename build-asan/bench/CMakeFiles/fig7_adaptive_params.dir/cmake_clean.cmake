file(REMOVE_RECURSE
  "CMakeFiles/fig7_adaptive_params.dir/fig7_adaptive_params.cc.o"
  "CMakeFiles/fig7_adaptive_params.dir/fig7_adaptive_params.cc.o.d"
  "fig7_adaptive_params"
  "fig7_adaptive_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_adaptive_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
