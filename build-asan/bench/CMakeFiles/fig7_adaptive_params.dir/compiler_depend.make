# Empty compiler generated dependencies file for fig7_adaptive_params.
# This may be replaced when dependencies are built.
