file(REMOVE_RECURSE
  "CMakeFiles/table7_rank_score.dir/table7_rank_score.cc.o"
  "CMakeFiles/table7_rank_score.dir/table7_rank_score.cc.o.d"
  "table7_rank_score"
  "table7_rank_score.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_rank_score.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
