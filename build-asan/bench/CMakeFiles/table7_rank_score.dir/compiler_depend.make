# Empty compiler generated dependencies file for table7_rank_score.
# This may be replaced when dependencies are built.
