file(REMOVE_RECURSE
  "CMakeFiles/fig5_split_variance.dir/fig5_split_variance.cc.o"
  "CMakeFiles/fig5_split_variance.dir/fig5_split_variance.cc.o.d"
  "fig5_split_variance"
  "fig5_split_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_split_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
