# Empty compiler generated dependencies file for fig5_split_variance.
# This may be replaced when dependencies are built.
