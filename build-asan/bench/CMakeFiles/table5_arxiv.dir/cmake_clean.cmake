file(REMOVE_RECURSE
  "CMakeFiles/table5_arxiv.dir/table5_arxiv.cc.o"
  "CMakeFiles/table5_arxiv.dir/table5_arxiv.cc.o.d"
  "table5_arxiv"
  "table5_arxiv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_arxiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
