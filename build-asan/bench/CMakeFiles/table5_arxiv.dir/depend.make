# Empty dependencies file for table5_arxiv.
# This may be replaced when dependencies are built.
