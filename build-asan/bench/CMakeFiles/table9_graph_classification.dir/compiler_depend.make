# Empty compiler generated dependencies file for table9_graph_classification.
# This may be replaced when dependencies are built.
