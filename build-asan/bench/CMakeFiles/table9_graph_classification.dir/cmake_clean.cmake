file(REMOVE_RECURSE
  "CMakeFiles/table9_graph_classification.dir/table9_graph_classification.cc.o"
  "CMakeFiles/table9_graph_classification.dir/table9_graph_classification.cc.o.d"
  "table9_graph_classification"
  "table9_graph_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_graph_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
