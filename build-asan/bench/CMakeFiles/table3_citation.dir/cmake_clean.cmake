file(REMOVE_RECURSE
  "CMakeFiles/table3_citation.dir/table3_citation.cc.o"
  "CMakeFiles/table3_citation.dir/table3_citation.cc.o.d"
  "table3_citation"
  "table3_citation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_citation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
