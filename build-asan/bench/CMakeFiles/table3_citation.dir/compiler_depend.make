# Empty compiler generated dependencies file for table3_citation.
# This may be replaced when dependencies are built.
