// End-to-end numeric gradient verification THROUGH entire architectures:
// for every zoo family, the cross-entropy loss of (model + head) on a tiny
// graph is gradient-checked against central finite differences over every
// parameter entry. This is the strongest correctness statement the autodiff
// substrate makes — it exercises SpMM, GAT edge-softmax, GRU composition,
// Chebyshev recursions, gating and pooling backward paths in situ.
#include <cctype>
#include <functional>
#include <string>

#include "autodiff/ops.h"
#include "graph/synthetic.h"
#include "gtest/gtest.h"
#include "models/model.h"
#include "nn/linear.h"
#include "testing/gradcheck.h"

namespace ahg {
namespace {

using ::ahg::testing::ExpectGradientsMatch;

const Graph& TinyGraph() {
  static const Graph* graph = [] {
    SyntheticConfig cfg;
    cfg.num_nodes = 14;
    cfg.num_classes = 3;
    cfg.feature_dim = 5;
    cfg.avg_degree = 2.5;
    cfg.weighted = true;
    cfg.seed = 77;
    return new Graph(GenerateSbmGraph(cfg));
  }();
  return *graph;
}

class ModelGradCheckTest : public ::testing::TestWithParam<ModelFamily> {};

TEST_P(ModelGradCheckTest, LossGradientMatchesFiniteDifferences) {
  ModelConfig cfg;
  cfg.family = GetParam();
  cfg.in_dim = TinyGraph().feature_dim();
  cfg.hidden_dim = 6;
  cfg.num_layers = 2;
  cfg.dropout = 0.0;  // deterministic forward
  cfg.heads = 2;
  cfg.poly_order = 2;
  cfg.seed = 5;
  std::unique_ptr<GnnModel> model = BuildModel(cfg);
  Rng head_rng(9);
  Linear head(model->params(), cfg.hidden_dim, TinyGraph().num_classes(),
              /*bias=*/true, &head_rng);
  const std::vector<int> mask{0, 2, 5, 7, 9, 12};

  std::function<Var()> make_loss = [&] {
    GnnContext ctx{&TinyGraph(), /*training=*/false, nullptr};
    Var x = MakeConstant(TinyGraph().features());
    Var logits = head.Apply(model->LayerOutputs(ctx, x).back());
    return MaskedCrossEntropy(logits, TinyGraph().labels(), mask);
  };
  // Looser tolerance: deep compositions accumulate O(eps) truncation error.
  ExpectGradientsMatch(make_loss, model->params()->params(), 1e-6, 2e-4);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ModelGradCheckTest,
    ::testing::Values(ModelFamily::kGcn, ModelFamily::kSageMean,
                      ModelFamily::kSagePool, ModelFamily::kGat,
                      ModelFamily::kSgc, ModelFamily::kTagcn,
                      ModelFamily::kAppnp, ModelFamily::kGin,
                      ModelFamily::kGcnii, ModelFamily::kJkMax,
                      ModelFamily::kDnaHighway, ModelFamily::kMixHop,
                      ModelFamily::kDagnn, ModelFamily::kCheb,
                      ModelFamily::kGatedGnn, ModelFamily::kMlp,
                      ModelFamily::kArma, ModelFamily::kGraphConv,
                      ModelFamily::kAgnn),
    [](const ::testing::TestParamInfo<ModelFamily>& info) {
      std::string name = ModelFamilyName(info.param);
      std::string out;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) out.push_back(c);
      }
      return out;
    });

}  // namespace
}  // namespace ahg
