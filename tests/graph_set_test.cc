#include "graph/graph_set.h"

#include "gtest/gtest.h"

namespace ahg {
namespace {

TEST(ProteinsLikeTest, GeneratesBalancedBinarySet) {
  ProteinsLikeConfig cfg;
  cfg.num_graphs = 40;
  cfg.seed = 1;
  GraphSet set = GenerateProteinsLike(cfg);
  EXPECT_EQ(set.graphs.size(), 40u);
  EXPECT_EQ(set.labels.size(), 40u);
  EXPECT_EQ(set.num_classes, 2);
  int ones = 0;
  for (int label : set.labels) ones += label;
  EXPECT_EQ(ones, 20);
  for (const Graph& g : set.graphs) {
    EXPECT_GE(g.num_nodes(), cfg.min_nodes);
    EXPECT_LE(g.num_nodes(), cfg.max_nodes);
    EXPECT_EQ(g.feature_dim(), cfg.feature_dim);
  }
}

TEST(ProteinsLikeTest, DenseClassHasMoreEdgesPerNode) {
  ProteinsLikeConfig cfg;
  cfg.num_graphs = 60;
  cfg.seed = 2;
  GraphSet set = GenerateProteinsLike(cfg);
  double density[2] = {0.0, 0.0};
  int count[2] = {0, 0};
  for (size_t i = 0; i < set.graphs.size(); ++i) {
    density[set.labels[i]] += set.graphs[i].AverageDegree();
    ++count[set.labels[i]];
  }
  EXPECT_GT(density[1] / count[1], density[0] / count[0]);
}

TEST(BatchGraphsTest, BlockDiagonalLayout) {
  ProteinsLikeConfig cfg;
  cfg.num_graphs = 6;
  cfg.seed = 3;
  GraphSet set = GenerateProteinsLike(cfg);
  GraphBatch batch = BatchGraphs(set, {0, 2, 4});
  EXPECT_EQ(batch.num_graphs, 3);
  const int expected_nodes = set.graphs[0].num_nodes() +
                             set.graphs[2].num_nodes() +
                             set.graphs[4].num_nodes();
  EXPECT_EQ(batch.merged.num_nodes(), expected_nodes);
  EXPECT_EQ(static_cast<int>(batch.segment_ids.size()), expected_nodes);
  EXPECT_EQ(batch.labels,
            (std::vector<int>{set.labels[0], set.labels[2], set.labels[4]}));
  // Segment ids are contiguous blocks 0,0,...,1,...,2.
  EXPECT_EQ(batch.segment_ids.front(), 0);
  EXPECT_EQ(batch.segment_ids.back(), 2);
  for (size_t i = 1; i < batch.segment_ids.size(); ++i) {
    EXPECT_GE(batch.segment_ids[i], batch.segment_ids[i - 1]);
  }
  // No edge crosses segment boundaries.
  for (const Edge& e : batch.merged.edges()) {
    EXPECT_EQ(batch.segment_ids[e.src], batch.segment_ids[e.dst]);
  }
}

}  // namespace
}  // namespace ahg
