#include "tasks/train_node_minibatch.h"

#include <set>

#include "graph/synthetic.h"
#include "gtest/gtest.h"

namespace ahg {
namespace {

Graph TestGraph(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_nodes = 220;
  cfg.num_classes = 3;
  cfg.feature_dim = 10;
  cfg.avg_degree = 5.0;
  cfg.homophily = 0.9;
  cfg.feature_signal = 1.0;
  cfg.seed = seed;
  return GenerateSbmGraph(cfg);
}

TEST(NeighborSamplingTest, SeedsComeFirstAndClosureIsBounded) {
  Graph g = TestGraph(1);
  Rng rng(2);
  const std::vector<int> seeds{3, 17, 42, 99};
  SampledBatch batch = SampleNeighborhoodBatch(g, seeds, /*hops=*/2,
                                               /*fanout=*/4, &rng);
  ASSERT_EQ(batch.num_seeds, 4);
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(batch.node_map[i], seeds[i]);
  }
  // No duplicate nodes.
  std::set<int> unique(batch.node_map.begin(), batch.node_map.end());
  EXPECT_EQ(unique.size(), batch.node_map.size());
  // Fanout bound: closure size <= seeds * (1 + f + f^2) + slack from self
  // loops counted in the raw adjacency.
  EXPECT_LE(batch.graph.num_nodes(), 4 * (1 + 5 + 25));
  // Seed labels/features carried over.
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(batch.graph.labels()[i], g.labels()[seeds[i]]);
  }
}

TEST(NeighborSamplingTest, InducedEdgesExistInOriginal) {
  Graph g = TestGraph(3);
  Rng rng(4);
  SampledBatch batch =
      SampleNeighborhoodBatch(g, {0, 1, 2}, /*hops=*/2, /*fanout=*/3, &rng);
  std::set<std::pair<int, int>> original;
  for (const Edge& e : g.edges()) original.insert({e.src, e.dst});
  for (const Edge& e : batch.graph.edges()) {
    EXPECT_TRUE(original.count({batch.node_map[e.src],
                                batch.node_map[e.dst]}) > 0);
  }
}

TEST(MinibatchTrainTest, ReachesFullBatchAccuracyBallpark) {
  Graph g = TestGraph(5);
  Rng rng(6);
  DataSplit split = RandomSplit(g, 0.5, 0.2, &rng);
  ModelConfig mcfg;
  mcfg.family = ModelFamily::kSageMean;
  mcfg.hidden_dim = 16;
  mcfg.num_layers = 2;
  mcfg.dropout = 0.2;
  mcfg.seed = 7;
  TrainConfig tcfg;
  tcfg.max_epochs = 30;
  tcfg.patience = 8;
  tcfg.learning_rate = 1e-2;
  MinibatchConfig mb;
  mb.batch_size = 32;
  mb.fanout = 5;
  NodeTrainResult mini =
      TrainSingleNodeModelMinibatch(mcfg, g, split, tcfg, mb);
  EXPECT_GT(mini.test_accuracy, 0.7);
  NodeTrainResult full = TrainSingleNodeModel(mcfg, g, split, tcfg);
  EXPECT_GT(mini.test_accuracy, full.test_accuracy - 0.12);
}

TEST(MinibatchTrainTest, WorksWithBatchLargerThanTrainSet) {
  Graph g = TestGraph(8);
  Rng rng(9);
  DataSplit split = RandomSplit(g, 0.3, 0.2, &rng);
  ModelConfig mcfg;
  mcfg.family = ModelFamily::kGcn;
  mcfg.hidden_dim = 12;
  mcfg.num_layers = 2;
  mcfg.dropout = 0.0;
  mcfg.seed = 10;
  TrainConfig tcfg;
  tcfg.max_epochs = 15;
  tcfg.patience = 6;
  MinibatchConfig mb;
  mb.batch_size = 100000;  // one batch per epoch
  mb.fanout = 100000;      // no sampling: equivalent to full closure
  NodeTrainResult result =
      TrainSingleNodeModelMinibatch(mcfg, g, split, tcfg, mb);
  EXPECT_GT(result.test_accuracy, 0.6);
}

}  // namespace
}  // namespace ahg
