#include "ensemble/baselines.h"

#include <set>

#include "gtest/gtest.h"
#include "metrics/metrics.h"

namespace ahg {
namespace {

TEST(AverageProbsTest, ComputesMean) {
  Matrix a = Matrix::FromRows({{1.0, 0.0}});
  Matrix b = Matrix::FromRows({{0.0, 1.0}});
  Matrix avg = AverageProbs({a, b});
  EXPECT_NEAR(avg(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(avg(0, 1), 0.5, 1e-12);
}

TEST(WeightedProbsTest, AppliesWeights) {
  Matrix a = Matrix::FromRows({{1.0, 0.0}});
  Matrix b = Matrix::FromRows({{0.0, 1.0}});
  Matrix w = WeightedProbs({a, b}, {0.8, 0.2});
  EXPECT_NEAR(w(0, 0), 0.8, 1e-12);
  EXPECT_NEAR(w(0, 1), 0.2, 1e-12);
}

// Three labeled validation nodes; model 0 is perfect, model 1 is always
// wrong, model 2 is uninformative.
struct Fixture {
  std::vector<Matrix> probs;
  std::vector<int> labels{0, 1, 0};
  std::vector<int> val{0, 1, 2};
  Fixture() {
    probs.push_back(
        Matrix::FromRows({{0.9, 0.1}, {0.1, 0.9}, {0.8, 0.2}}));  // perfect
    probs.push_back(
        Matrix::FromRows({{0.2, 0.8}, {0.9, 0.1}, {0.3, 0.7}}));  // inverted
    probs.push_back(
        Matrix::FromRows({{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}}));  // flat
  }
};

TEST(LearnEnsembleWeightsTest, UpweightsTheGoodModel) {
  Fixture f;
  std::vector<double> w =
      LearnEnsembleWeights(f.probs, f.labels, f.val, 300, 0.1);
  ASSERT_EQ(w.size(), 3u);
  double total = 0.0;
  for (double x : w) total += x;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(w[0], w[1]);
  EXPECT_GT(w[0], w[2]);
  // The weighted ensemble should classify validation perfectly.
  EXPECT_NEAR(Accuracy(WeightedProbs(f.probs, w), f.labels, f.val), 1.0,
              1e-12);
}

TEST(GreedyEnsembleSelectTest, StartsWithBestModel) {
  Fixture f;
  std::vector<int> selected =
      GreedyEnsembleSelect(f.probs, f.labels, f.val);
  ASSERT_FALSE(selected.empty());
  EXPECT_EQ(selected.front(), 0);
  // Adding the inverted model can only hurt; it must not be selected first
  // and the selection never repeats a model.
  std::set<int> unique(selected.begin(), selected.end());
  EXPECT_EQ(unique.size(), selected.size());
}

TEST(GreedyEnsembleSelectTest, SelectionAccuracyIsMonotoneVsSingleBest) {
  Fixture f;
  std::vector<int> selected =
      GreedyEnsembleSelect(f.probs, f.labels, f.val);
  std::vector<Matrix> members;
  for (int idx : selected) members.push_back(f.probs[idx]);
  const double ens_acc = Accuracy(AverageProbs(members), f.labels, f.val);
  const double best_single = Accuracy(f.probs[0], f.labels, f.val);
  EXPECT_GE(ens_acc, best_single);
}

TEST(RandomEnsembleSelectTest, CountAndRange) {
  Rng rng(1);
  std::vector<int> sel = RandomEnsembleSelect(10, 4, &rng);
  EXPECT_EQ(sel.size(), 4u);
  for (int s : sel) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 10);
  }
  // Requesting more than available clamps.
  EXPECT_EQ(RandomEnsembleSelect(3, 10, &rng).size(), 3u);
}

}  // namespace
}  // namespace ahg
