#include "graph/split.h"

#include <set>
#include <unordered_set>

#include "graph/synthetic.h"
#include "gtest/gtest.h"

namespace ahg {
namespace {

Graph SmallGraph() {
  SyntheticConfig cfg;
  cfg.num_nodes = 200;
  cfg.num_classes = 4;
  cfg.feature_dim = 8;
  cfg.avg_degree = 3.0;
  cfg.seed = 5;
  return GenerateSbmGraph(cfg);
}

bool Disjoint(const std::vector<int>& a, const std::vector<int>& b) {
  std::set<int> sa(a.begin(), a.end());
  for (int x : b) {
    if (sa.count(x)) return false;
  }
  return true;
}

TEST(SplitTest, RandomSplitPartitionsLabeledNodes) {
  Graph g = SmallGraph();
  Rng rng(1);
  DataSplit split = RandomSplit(g, 0.6, 0.2, &rng);
  EXPECT_EQ(split.train.size() + split.val.size() + split.test.size(),
            g.LabeledNodes().size());
  EXPECT_TRUE(Disjoint(split.train, split.val));
  EXPECT_TRUE(Disjoint(split.train, split.test));
  EXPECT_TRUE(Disjoint(split.val, split.test));
  EXPECT_NEAR(static_cast<double>(split.train.size()), 120.0, 2.0);
}

TEST(SplitTest, RandomSplitDeterministicGivenSeed) {
  Graph g = SmallGraph();
  Rng rng1(9), rng2(9);
  DataSplit a = RandomSplit(g, 0.5, 0.2, &rng1);
  DataSplit b = RandomSplit(g, 0.5, 0.2, &rng2);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.val, b.val);
}

TEST(SplitTest, ResplitTrainValKeepsTestFixed) {
  Graph g = SmallGraph();
  Rng rng(2);
  DataSplit base = RandomSplit(g, 0.5, 0.2, &rng);
  DataSplit re = ResplitTrainVal(base, 0.3, &rng);
  EXPECT_EQ(re.test, base.test);
  EXPECT_EQ(re.train.size() + re.val.size(),
            base.train.size() + base.val.size());
  EXPECT_TRUE(Disjoint(re.train, re.val));
  // The train/val pool is preserved as a set.
  std::set<int> base_pool(base.train.begin(), base.train.end());
  base_pool.insert(base.val.begin(), base.val.end());
  std::set<int> re_pool(re.train.begin(), re.train.end());
  re_pool.insert(re.val.begin(), re.val.end());
  EXPECT_EQ(base_pool, re_pool);
}

TEST(SplitTest, PerClassSplitTakesExactlyPerClass) {
  Graph g = SmallGraph();
  Rng rng(3);
  DataSplit split = PerClassSplit(g, 5, 30, 50, &rng);
  EXPECT_EQ(split.train.size(), 20u);  // 4 classes x 5
  std::vector<int> per_class(g.num_classes(), 0);
  for (int node : split.train) ++per_class[g.labels()[node]];
  for (int c = 0; c < g.num_classes(); ++c) EXPECT_EQ(per_class[c], 5);
  EXPECT_EQ(split.val.size(), 30u);
  EXPECT_EQ(split.test.size(), 50u);
  EXPECT_TRUE(Disjoint(split.train, split.val));
  EXPECT_TRUE(Disjoint(split.val, split.test));
}

TEST(LinkSplitTest, PartitionsAndBalancesEdges) {
  Graph g = SmallGraph();
  Rng rng(4);
  LinkSplit split = MakeLinkSplit(g, 0.1, 0.2, &rng);
  EXPECT_EQ(split.val_pos.size(), split.val_neg.size());
  EXPECT_EQ(split.test_pos.size(), split.test_neg.size());
  EXPECT_GT(split.train_pos.size(), 0u);
  // The training graph lost exactly the held-out positives.
  const size_t held_out = split.val_pos.size() + split.test_pos.size();
  EXPECT_LE(split.train_graph.num_edges() + static_cast<int64_t>(held_out),
            g.num_edges());
}

TEST(LinkSplitTest, NegativesAreNonEdges) {
  Graph g = SmallGraph();
  Rng rng(5);
  LinkSplit split = MakeLinkSplit(g, 0.1, 0.1, &rng);
  std::unordered_set<int64_t> edges;
  for (const Edge& e : g.edges()) {
    const int64_t a = std::min(e.src, e.dst);
    const int64_t b = std::max(e.src, e.dst);
    edges.insert(a * 100000 + b);
  }
  auto check = [&](const std::vector<NodePair>& negs) {
    for (const NodePair& p : negs) {
      const int64_t a = std::min(p.u, p.v);
      const int64_t b = std::max(p.u, p.v);
      EXPECT_EQ(edges.count(a * 100000 + b), 0u);
      EXPECT_NE(p.u, p.v);
    }
  };
  check(split.train_neg);
  check(split.val_neg);
  check(split.test_neg);
}

}  // namespace
}  // namespace ahg
