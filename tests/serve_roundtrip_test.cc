// Save -> load -> serve round trip across every architecture in the model
// zoo: each candidate is materialized with its classifier head, published
// into one versioned registry, reloaded through ModelRegistry::Refresh, and
// served through the InferenceEngine's frozen cached path. Served
// probabilities must match the training-path eval forward within 1e-10
// (in practice they are bitwise identical; the tolerance only guards
// against future accumulation-order changes in the head).
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <vector>

#include "graph/synthetic.h"
#include "gtest/gtest.h"
#include "models/model_zoo.h"
#include "nn/linear.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"

namespace ahg::serve {
namespace {

TEST(ServeRoundTripTest, EveryZooArchitectureSurvivesSaveLoadServe) {
  SyntheticConfig cfg;
  cfg.num_nodes = 60;
  cfg.num_classes = 4;
  cfg.feature_dim = 8;
  cfg.avg_degree = 3.0;
  cfg.seed = 5;
  Graph graph = GenerateSbmGraph(cfg);

  const char* base = std::getenv("TMPDIR");
  const std::string dir =
      std::string(base ? base : "/tmp") + "/serve_zoo_roundtrip";
  std::filesystem::remove_all(dir);

  // Publish one registry version per zoo candidate.
  const std::vector<CandidateSpec> pool = DefaultCandidatePool();
  std::vector<ServableModel> originals;
  for (size_t i = 0; i < pool.size(); ++i) {
    ServableModel model;
    model.version = static_cast<int>(i) + 1;
    model.num_classes = graph.num_classes();
    model.config = pool[i].config;
    model.config.in_dim = graph.feature_dim();
    model.config.hidden_dim = 8;
    model.config.seed = 1000 + i;
    std::unique_ptr<GnnModel> zoo = BuildModel(model.config);
    Rng head_rng(model.config.seed ^ 0x5ca1ab1eULL);
    Linear head(zoo->params(), model.config.hidden_dim, model.num_classes,
                /*bias=*/true, &head_rng);
    model.params = zoo->params()->Snapshot();
    ASSERT_TRUE(ModelRegistry::Publish(dir, model.version, model.config,
                                       model.params, model.num_classes)
                    .ok())
        << pool[i].name;
    originals.push_back(std::move(model));
  }

  ModelRegistry registry(dir);
  ASSERT_TRUE(registry.Refresh().ok());
  ASSERT_EQ(registry.Versions().size(), pool.size());
  ASSERT_TRUE(registry.ValidateCompatibility(graph).ok());

  InferenceEngine engine(&graph, EngineOptions{});
  const std::vector<int> query_nodes = {0, 7, 31, 59, 7};
  for (size_t i = 0; i < pool.size(); ++i) {
    SCOPED_TRACE(pool[i].name);
    std::shared_ptr<const ServableModel> loaded =
        registry.Version(static_cast<int>(i) + 1);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->config.family, originals[i].config.family);
    EXPECT_EQ(loaded->params.size(), originals[i].params.size());

    // The deployment artifact serves what the training path computes.
    Matrix training = InferenceEngine::TrainingPathProbs(*loaded, graph);
    auto served_all = engine.PredictAll(*loaded);
    ASSERT_TRUE(served_all.ok()) << served_all.status().ToString();
    EXPECT_TRUE(AllClose(served_all.value(), training, 1e-10));

    auto served_batch = engine.PredictNodes(*loaded, query_nodes);
    ASSERT_TRUE(served_batch.ok());
    for (size_t q = 0; q < query_nodes.size(); ++q) {
      for (int c = 0; c < graph.num_classes(); ++c) {
        EXPECT_NEAR(served_batch.value()(static_cast<int>(q), c),
                    training(query_nodes[q], c), 1e-10);
      }
    }
  }
  // One propagation product per version was cached.
  EXPECT_EQ(engine.cache().num_entries(), static_cast<int64_t>(pool.size()));
}

}  // namespace
}  // namespace ahg::serve
