// Tests for the bench harness utilities (bench/common): table rendering,
// bagged single-model training, proxy-pool selection and score formatting.
#include "common/bench_util.h"

#include <set>

#include "graph/synthetic.h"
#include "gtest/gtest.h"

namespace ahg::bench {
namespace {

TEST(FastModeTest, DetectsFlag) {
  const char* with_flag[] = {"prog", "--fast"};
  const char* without[] = {"prog", "--other"};
  EXPECT_TRUE(FastMode(2, const_cast<char**>(with_flag)));
  EXPECT_FALSE(FastMode(2, const_cast<char**>(without)));
  EXPECT_FALSE(FastMode(1, const_cast<char**>(without)));
}

TEST(MeanStdCellTest, FormatsPercent) {
  EXPECT_EQ(MeanStdCell({0.85, 0.87}), "86.0±1.4");
  EXPECT_EQ(MeanStdCell({0.5}), "50.0±0.0");
}

TEST(PaperSingleRosterTest, HasNineNamedRows) {
  std::vector<CandidateSpec> roster = PaperSingleRoster();
  EXPECT_EQ(roster.size(), 9u);
  EXPECT_EQ(roster.front().name, "GCN");
  EXPECT_EQ(roster.back().name, "GCNII");
}

TEST(TrainSinglesTest, ProducesOneRunPerSpec) {
  SyntheticConfig cfg;
  cfg.num_nodes = 120;
  cfg.num_classes = 3;
  cfg.feature_dim = 8;
  cfg.homophily = 0.9;
  cfg.seed = 2;
  Graph g = GenerateSbmGraph(cfg);
  Rng rng(3);
  DataSplit split = RandomSplit(g, 0.5, 0.2, &rng);
  TrainConfig train;
  train.max_epochs = 10;
  train.patience = 5;
  std::vector<CandidateSpec> specs{FindCandidate("GCN"),
                                   FindCandidate("SGC")};
  std::vector<SingleRun> runs =
      TrainSingles(g, specs, split, /*bagging=*/2, 0.2, train, 7);
  ASSERT_EQ(runs.size(), 2u);
  for (const SingleRun& run : runs) {
    EXPECT_EQ(run.bagged_probs.rows(), g.num_nodes());
    EXPECT_GT(run.val_accuracy, 0.0);
    EXPECT_GT(run.test_accuracy, 0.3);
  }
  EXPECT_EQ(runs[0].name, "GCN");
}

TEST(PoolByProxyEvalTest, ReturnsRequestedCountOfValidIndices) {
  SyntheticConfig cfg;
  cfg.num_nodes = 150;
  cfg.num_classes = 3;
  cfg.feature_dim = 8;
  cfg.seed = 4;
  Graph g = GenerateSbmGraph(cfg);
  TrainConfig train;
  train.max_epochs = 8;
  std::vector<CandidateSpec> specs{FindCandidate("GCN"),
                                   FindCandidate("SGC"),
                                   FindCandidate("TAGC")};
  std::vector<int> pool = PoolByProxyEval(g, specs, 2, train, 5);
  ASSERT_EQ(pool.size(), 2u);
  for (int idx : pool) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 3);
  }
  EXPECT_NE(pool[0], pool[1]);
}

TEST(RunNodeRosterTest, EmitsExpectedMethodRows) {
  SyntheticConfig cfg;
  cfg.num_nodes = 130;
  cfg.num_classes = 3;
  cfg.feature_dim = 8;
  cfg.homophily = 0.9;
  cfg.seed = 6;
  Graph g = GenerateSbmGraph(cfg);
  RosterOptions options;
  options.repeats = 1;
  options.bagging = 1;
  options.train.max_epochs = 8;
  options.train.patience = 4;
  options.singles = {FindCandidate("GCN"), FindCandidate("SGC")};
  options.pool_n = 2;
  options.k = 1;
  options.run_random_ensemble = true;
  options.run_label_prop = true;
  options.run_correct_smooth = true;
  std::vector<MethodScores> results = RunNodeRoster(g, options);
  std::set<std::string> methods;
  for (const MethodScores& m : results) {
    methods.insert(m.method);
    EXPECT_EQ(m.test_accs.size(), 1u);
  }
  for (const char* expected :
       {"GCN", "SGC", "Random Ensemble", "D-ensemble", "L-ensemble",
        "Goyal et al.", "LabelProp", "Best single + C&S",
        "AutoHEnsGNN(Adaptive)", "AutoHEnsGNN(Gradient)"}) {
    EXPECT_TRUE(methods.count(expected)) << expected;
  }
}

}  // namespace
}  // namespace ahg::bench
