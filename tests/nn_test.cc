#include <cmath>

#include "autodiff/ops.h"
#include "gtest/gtest.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "nn/parameter_store.h"

namespace ahg {
namespace {

TEST(InitTest, GlorotUniformBounds) {
  Rng rng(1);
  Matrix w = GlorotUniform(100, 50, &rng);
  const double bound = std::sqrt(6.0 / 150.0);
  for (int64_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::abs(w.data()[i]), bound);
  }
  // Not degenerate.
  EXPECT_GT(w.SquaredNorm(), 0.0);
}

TEST(InitTest, HeNormalVariance) {
  Rng rng(2);
  Matrix w = HeNormal(200, 100, &rng);
  const double var = w.SquaredNorm() / w.size();
  EXPECT_NEAR(var, 2.0 / 200.0, 0.002);
}

TEST(ParameterStoreTest, CreateTracksParams) {
  ParameterStore store;
  Var a = store.Create(Matrix(2, 3));
  Var b = store.Create(Matrix(1, 4));
  EXPECT_EQ(store.params().size(), 2u);
  EXPECT_EQ(store.NumParams(), 10);
  EXPECT_TRUE(a->requires_grad);
  EXPECT_TRUE(b->requires_grad);
}

TEST(ParameterStoreTest, SnapshotRestoreRoundTrip) {
  ParameterStore store;
  Var a = store.Create(Matrix::FromRows({{1, 2}}));
  std::vector<Matrix> snapshot = store.Snapshot();
  a->value(0, 0) = 99.0;
  store.Restore(snapshot);
  EXPECT_EQ(a->value(0, 0), 1.0);
}

TEST(ParameterStoreTest, ZeroGradClearsAll) {
  ParameterStore store;
  Var a = store.Create(Matrix::FromRows({{1.0}}));
  Backward(SumAll(ScalarMul(a, 2.0)));
  EXPECT_NE(a->grad(0, 0), 0.0);
  store.ZeroGrad();
  EXPECT_EQ(a->grad(0, 0), 0.0);
}

TEST(LinearTest, ShapesAndBias) {
  ParameterStore store;
  Rng rng(3);
  Linear layer(&store, 4, 6, /*bias=*/true, &rng);
  Var x = MakeConstant(Matrix::Constant(5, 4, 1.0));
  Var y = layer.Apply(x);
  EXPECT_EQ(y->rows(), 5);
  EXPECT_EQ(y->cols(), 6);
  EXPECT_EQ(store.params().size(), 2u);  // W and b
}

TEST(LinearTest, NoBiasRegistersOneParam) {
  ParameterStore store;
  Rng rng(4);
  Linear layer(&store, 4, 6, /*bias=*/false, &rng);
  EXPECT_EQ(store.params().size(), 1u);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize ||p - t||^2; Adam should approach t.
  Var p = MakeParam(Matrix::Constant(1, 3, 5.0));
  Matrix target = Matrix::FromRows({{1.0, -2.0, 0.5}});
  AdamConfig config;
  config.learning_rate = 0.1;
  config.weight_decay = 0.0;
  Adam adam({p}, config);
  for (int step = 0; step < 300; ++step) {
    p->ZeroGrad();
    Var diff = Sub(p, MakeConstant(target));
    Backward(SumAll(CWiseMul(diff, diff)));
    adam.Step();
  }
  EXPECT_TRUE(AllClose(p->value, target, 1e-2));
}

TEST(AdamTest, WeightDecayShrinksUnusedParams) {
  // With pure decay (zero task gradient), weights should shrink.
  Var p = MakeParam(Matrix::Constant(1, 1, 1.0));
  AdamConfig config;
  config.learning_rate = 0.05;
  config.weight_decay = 1.0;
  Adam adam({p}, config);
  for (int step = 0; step < 50; ++step) {
    p->ZeroGrad();
    p->EnsureGrad();  // zero gradient, decay only
    adam.Step();
  }
  EXPECT_LT(std::abs(p->value(0, 0)), 0.5);
}

TEST(AdamTest, SkipsParamsWithoutGrad) {
  Var p = MakeParam(Matrix::Constant(1, 1, 2.0));
  AdamConfig config;
  Adam adam({p}, config);
  adam.Step();  // p->grad never allocated
  EXPECT_EQ(p->value(0, 0), 2.0);
}

TEST(SgdTest, DescendsQuadratic) {
  Var p = MakeParam(Matrix::Constant(1, 1, 4.0));
  Sgd sgd({p}, 0.1, 0.0);
  for (int step = 0; step < 100; ++step) {
    p->ZeroGrad();
    Var diff = Sub(p, MakeConstant(Matrix::Constant(1, 1, 1.0)));
    Backward(SumAll(CWiseMul(diff, diff)));
    sgd.Step();
  }
  EXPECT_NEAR(p->value(0, 0), 1.0, 1e-4);
}

TEST(AdamTest, LearningRateMutable) {
  Var p = MakeParam(Matrix(1, 1));
  Adam adam({p}, AdamConfig{});
  adam.set_learning_rate(0.5);
  EXPECT_EQ(adam.learning_rate(), 0.5);
}

}  // namespace
}  // namespace ahg
