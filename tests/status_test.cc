#include "util/status.h"

#include "gtest/gtest.h"

namespace ahg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, EachFactoryProducesItsCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            Status::Code::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            Status::Code::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DeadlineExceeded: late");
  EXPECT_EQ(Status::ResourceExhausted("full").ToString(),
            "ResourceExhausted: full");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Status::Code::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  ASSERT_TRUE(v.ok());
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

}  // namespace
}  // namespace ahg
