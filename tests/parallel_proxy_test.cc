// Parallel proxy evaluation must be a pure speed knob: scores and ranking
// are bit-identical to the sequential run because every candidate derives
// its seeds independently of scheduling.
#include "core/proxy_eval.h"

#include "graph/synthetic.h"
#include "gtest/gtest.h"

namespace ahg {
namespace {

TEST(ParallelProxyTest, ThreadCountDoesNotChangeScores) {
  SyntheticConfig cfg;
  cfg.num_nodes = 160;
  cfg.num_classes = 3;
  cfg.feature_dim = 8;
  cfg.avg_degree = 4.0;
  cfg.seed = 31;
  Graph g = GenerateSbmGraph(cfg);
  std::vector<CandidateSpec> pool{FindCandidate("GCN"), FindCandidate("SGC"),
                                  FindCandidate("TAGC"),
                                  FindCandidate("GraphSAGE-mean")};
  ProxyConfig base;
  base.dataset_ratio = 0.5;
  base.bagging = 2;
  base.model_ratio = 0.5;
  base.train.max_epochs = 10;
  base.train.patience = 5;

  ProxyConfig serial = base;
  serial.num_threads = 1;
  ProxyConfig threaded = base;
  threaded.num_threads = 3;
  ProxyEvalResult a = ProxyEvaluate(pool, g, serial, /*seed=*/7);
  ProxyEvalResult b = ProxyEvaluate(pool, g, threaded, /*seed=*/7);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].name, b.ranked[i].name);
    EXPECT_DOUBLE_EQ(a.ranked[i].mean_val_accuracy,
                     b.ranked[i].mean_val_accuracy);
  }
}

TEST(ParallelProxyTest, RepeatedRunsAreDeterministic) {
  SyntheticConfig cfg;
  cfg.num_nodes = 120;
  cfg.num_classes = 2;
  cfg.feature_dim = 6;
  cfg.seed = 32;
  Graph g = GenerateSbmGraph(cfg);
  std::vector<CandidateSpec> pool{FindCandidate("GCN"), FindCandidate("MLP")};
  ProxyConfig proxy;
  proxy.dataset_ratio = 0.6;
  proxy.bagging = 2;
  proxy.train.max_epochs = 8;
  ProxyEvalResult a = ProxyEvaluate(pool, g, proxy, /*seed=*/9);
  ProxyEvalResult b = ProxyEvaluate(pool, g, proxy, /*seed=*/9);
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ranked[i].mean_val_accuracy,
                     b.ranked[i].mean_val_accuracy);
  }
}

}  // namespace
}  // namespace ahg
