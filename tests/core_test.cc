// Tests of the paper's core machinery: GSE, proxy evaluation, both search
// algorithms, the hierarchical retraining stage, and the adaptive-beta rule.
#include <cmath>
#include <cstring>
#include <numeric>

#include "core/autohens.h"
#include "core/gse.h"
#include "core/hierarchical.h"
#include "core/proxy_eval.h"
#include "core/search_adaptive.h"
#include "core/search_gradient.h"
#include "graph/synthetic.h"
#include "gtest/gtest.h"

namespace ahg {
namespace {

const Graph& TestGraph() {
  static const Graph* graph = [] {
    SyntheticConfig cfg;
    cfg.num_nodes = 150;
    cfg.num_classes = 3;
    cfg.feature_dim = 10;
    cfg.avg_degree = 5.0;
    cfg.homophily = 0.88;
    cfg.feature_signal = 1.0;
    cfg.seed = 21;
    return new Graph(GenerateSbmGraph(cfg));
  }();
  return *graph;
}

DataSplit TestSplit() {
  Rng rng(22);
  return RandomSplit(TestGraph(), 0.5, 0.2, &rng);
}

ModelConfig TinyConfig(ModelFamily family) {
  ModelConfig cfg;
  cfg.family = family;
  cfg.hidden_dim = 12;
  cfg.num_layers = 3;
  cfg.dropout = 0.2;
  return cfg;
}

TrainConfig FastTrain() {
  TrainConfig cfg;
  cfg.max_epochs = 40;
  cfg.patience = 8;
  cfg.learning_rate = 2e-2;
  return cfg;
}

std::vector<CandidateSpec> TinyPool() {
  std::vector<CandidateSpec> pool;
  pool.push_back({"GCN", TinyConfig(ModelFamily::kGcn)});
  pool.push_back({"SGC", TinyConfig(ModelFamily::kSgc)});
  return pool;
}

TEST(GseTest, ProbsAreRowStochastic) {
  GraphSelfEnsemble gse(TinyConfig(ModelFamily::kGcn), /*k=*/3,
                        TestGraph().feature_dim(), TestGraph().num_classes(),
                        /*seed_base=*/5, /*trainable_alpha=*/true);
  GnnContext ctx{&TestGraph(), false, nullptr};
  Var probs = gse.Probs(ctx, MakeConstant(TestGraph().features()));
  EXPECT_EQ(probs->rows(), TestGraph().num_nodes());
  EXPECT_EQ(probs->cols(), TestGraph().num_classes());
  for (int r = 0; r < probs->rows(); ++r) {
    double total = 0.0;
    for (int c = 0; c < probs->cols(); ++c) {
      EXPECT_GE(probs->value(r, c), 0.0);
      total += probs->value(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(GseTest, AlphaParamsExposedOnlyWhenTrainable) {
  GraphSelfEnsemble trainable(TinyConfig(ModelFamily::kGcn), 3, 10, 3, 1,
                              /*trainable_alpha=*/true);
  EXPECT_EQ(trainable.AlphaParams().size(), 3u);
  GraphSelfEnsemble fixed(TinyConfig(ModelFamily::kGcn), 3, 10, 3, 1,
                          /*trainable_alpha=*/false);
  EXPECT_TRUE(fixed.AlphaParams().empty());
  // Fixed mode defaults to the deepest layer.
  EXPECT_EQ(fixed.SelectedLayers(), (std::vector<int>{3, 3, 3}));
}

TEST(GseTest, SetFixedLayersOverridesAlpha) {
  GraphSelfEnsemble gse(TinyConfig(ModelFamily::kGcn), 3, 10, 3, 1,
                        /*trainable_alpha=*/true);
  gse.SetFixedLayers({1, 2, 3});
  EXPECT_EQ(gse.SelectedLayers(), (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(gse.AlphaParams().empty());
}

TEST(GseTest, WeightParamsCoverAllMembers) {
  GraphSelfEnsemble gse(TinyConfig(ModelFamily::kGcn), 2, 10, 3, 1, true);
  // Two members, each: 3 GCN layers (W+b each) + head (W+b) = 8 params.
  EXPECT_EQ(gse.WeightParams().size(), 16u);
}

TEST(ProxyEvalTest, RanksAllCandidatesDescending) {
  ProxyConfig pcfg;
  pcfg.dataset_ratio = 0.6;
  pcfg.bagging = 2;
  pcfg.model_ratio = 0.5;
  pcfg.train = FastTrain();
  pcfg.train.max_epochs = 25;
  ProxyEvalResult result =
      ProxyEvaluate(TinyPool(), TestGraph(), pcfg, /*seed=*/3);
  ASSERT_EQ(result.ranked.size(), 2u);
  EXPECT_GE(result.ranked[0].mean_val_accuracy,
            result.ranked[1].mean_val_accuracy);
  EXPECT_GT(result.total_seconds, 0.0);
  // Proxy hidden size applied.
  EXPECT_EQ(result.ranked[0].config.hidden_dim, 6);
  EXPECT_EQ(result.ranked[0].original_config.hidden_dim, 12);
}

TEST(ProxyEvalTest, SelectTopRestoresOriginalConfig) {
  ProxyConfig pcfg;
  pcfg.dataset_ratio = 0.5;
  pcfg.bagging = 1;
  pcfg.train = FastTrain();
  pcfg.train.max_epochs = 15;
  ProxyEvalResult result =
      ProxyEvaluate(TinyPool(), TestGraph(), pcfg, /*seed=*/4);
  std::vector<CandidateSpec> top = SelectTopCandidates(result, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].config.hidden_dim, 12);
}

TEST(ProxyEvalTest, FullRatioUsesWholeGraph) {
  ProxyConfig pcfg;
  pcfg.dataset_ratio = 1.0;
  pcfg.bagging = 1;
  pcfg.model_ratio = 1.0;
  pcfg.train = FastTrain();
  pcfg.train.max_epochs = 10;
  // Just exercises the ratio >= 1 path.
  ProxyEvalResult result =
      ProxyEvaluate(TinyPool(), TestGraph(), pcfg, /*seed=*/5);
  EXPECT_EQ(result.ranked.size(), 2u);
}

TEST(AdaptiveBetaTest, HigherAccuracyGetsHigherWeight) {
  std::vector<double> beta = AdaptiveBeta({0.9, 0.6, 0.3}, 3.0, 3, 8000, 5);
  EXPECT_GT(beta[0], beta[1]);
  EXPECT_GT(beta[1], beta[2]);
  EXPECT_NEAR(std::accumulate(beta.begin(), beta.end(), 0.0), 1.0, 1e-9);
}

TEST(AdaptiveBetaTest, SparserGraphSharpensDistribution) {
  // Smaller average degree -> smaller tau -> sharper softmax.
  std::vector<double> sparse = AdaptiveBeta({0.9, 0.3}, 1.0, 3, 100, 5);
  std::vector<double> dense = AdaptiveBeta({0.9, 0.3}, 50.0, 3, 100, 5);
  EXPECT_GT(sparse[0], dense[0]);
}

TEST(AdaptiveBetaTest, EqualAccuraciesGiveUniform) {
  std::vector<double> beta = AdaptiveBeta({0.7, 0.7, 0.7}, 3.0, 3, 8000, 5);
  for (double b : beta) EXPECT_NEAR(b, 1.0 / 3.0, 1e-9);
}

TEST(AdaptiveBetaTest, EmptyPoolReturnsEmptyWeights) {
  EXPECT_TRUE(AdaptiveBeta({}, 3.0, 3, 8000, 5).empty());
}

TEST(AdaptiveBetaTest, TiedAccuraciesSplitUniformlyAtAnyLevel) {
  // Min-max normalization degenerates when hi == lo; the tie must split the
  // weight evenly whether the shared accuracy is zero, middling, or perfect.
  for (double acc : {0.0, 0.5, 1.0}) {
    std::vector<double> beta =
        AdaptiveBeta({acc, acc, acc, acc}, 5.0, 3, 8000, 5);
    ASSERT_EQ(beta.size(), 4u);
    for (double b : beta) EXPECT_NEAR(b, 0.25, 1e-12);
  }
}

TEST(AdaptiveBetaTest, ZeroEdgeGraphIsFiniteAndSharpest) {
  // An edgeless graph has average degree 0: log(0 + 1) = 0 keeps the density
  // term finite, and the resulting tau is the smallest over all densities,
  // so the softmax is at its sharpest.
  std::vector<double> zero = AdaptiveBeta({0.9, 0.3}, 0.0, 3, 100, 5);
  std::vector<double> denser = AdaptiveBeta({0.9, 0.3}, 2.0, 3, 100, 5);
  ASSERT_EQ(zero.size(), 2u);
  for (double b : zero) {
    EXPECT_TRUE(std::isfinite(b));
    EXPECT_GE(b, 0.0);
  }
  EXPECT_NEAR(zero[0] + zero[1], 1.0, 1e-9);
  EXPECT_GE(zero[0], denser[0]);
}

TEST(AdaptiveBetaTest, ExtremeLambdaStaysNormalized) {
  // lambda = 1e6 overflows pow(density, lambda) to +inf; tau -> inf must
  // yield the uniform distribution, never NaN.
  std::vector<double> flat = AdaptiveBeta({0.9, 0.6, 0.3}, 5.0, 3, 8000, 1e6);
  for (double b : flat) {
    EXPECT_TRUE(std::isfinite(b));
    EXPECT_NEAR(b, 1.0 / 3.0, 1e-9);
  }
  // lambda = -1e6 underflows the pow to 0; tau -> 1 is the sharp extreme and
  // must still produce a valid distribution favouring the best model.
  std::vector<double> sharp =
      AdaptiveBeta({0.9, 0.6, 0.3}, 5.0, 3, 8000, -1e6);
  double total = 0.0;
  for (double b : sharp) {
    EXPECT_TRUE(std::isfinite(b));
    total += b;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(sharp[0], sharp[2]);
}

TEST(SearchAdaptiveTest, ProducesValidLayersAndBeta) {
  AdaptiveSearchConfig cfg;
  cfg.k = 2;
  cfg.train = FastTrain();
  cfg.train.max_epochs = 20;
  cfg.seed = 6;
  AdaptiveSearchResult result =
      SearchAdaptive(TinyPool(), TestGraph(), TestSplit(), cfg);
  ASSERT_EQ(result.layers.size(), 2u);
  for (const auto& member_layers : result.layers) {
    ASSERT_EQ(member_layers.size(), 2u);
    for (int layer : member_layers) {
      EXPECT_GE(layer, 1);
      EXPECT_LE(layer, 3);
    }
  }
  EXPECT_NEAR(std::accumulate(result.beta.begin(), result.beta.end(), 0.0),
              1.0, 1e-9);
  EXPECT_GT(result.search_seconds, 0.0);
}

TEST(SearchGradientTest, ProducesValidLayersAndBeta) {
  GradientSearchConfig cfg;
  cfg.k = 2;
  cfg.max_epochs = 15;
  cfg.patience = 5;
  cfg.train = FastTrain();
  cfg.seed = 7;
  GradientSearchResult result =
      SearchGradient(TinyPool(), TestGraph(), TestSplit(), cfg);
  ASSERT_EQ(result.layers.size(), 2u);
  for (const auto& member_layers : result.layers) {
    ASSERT_EQ(member_layers.size(), 2u);
    for (int layer : member_layers) {
      EXPECT_GE(layer, 1);
      EXPECT_LE(layer, 3);
    }
  }
  EXPECT_NEAR(std::accumulate(result.beta.begin(), result.beta.end(), 0.0),
              1.0, 1e-9);
  EXPECT_GT(result.val_accuracy, 0.4);  // co-trained ensemble learns
}

TEST(HierarchicalTest, CombinedProbsAreRowStochastic) {
  HierarchicalResult result = TrainHierarchicalEnsemble(
      TinyPool(), {{2, 3}, {1, 2}}, {0.6, 0.4}, TestGraph(), TestSplit(),
      FastTrain(), /*seed=*/8);
  EXPECT_EQ(result.per_model_probs.size(), 2u);
  for (int r = 0; r < result.probs.rows(); ++r) {
    double total = 0.0;
    for (int c = 0; c < result.probs.cols(); ++c) {
      total += result.probs(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  EXPECT_GT(result.val_accuracy, 0.6);
}

TEST(HierarchicalTest, GseReducesToSingleArchitecture) {
  CandidateSpec spec{"GCN", TinyConfig(ModelFamily::kGcn)};
  HierarchicalResult result = TrainGse(spec, {2, 2, 3}, TestGraph(),
                                       TestSplit(), FastTrain(), /*seed=*/9);
  EXPECT_EQ(result.per_model_probs.size(), 1u);
  EXPECT_GT(result.val_accuracy, 0.6);
}

class AutoHEnsAlgoTest : public ::testing::TestWithParam<SearchAlgo> {};

TEST_P(AutoHEnsAlgoTest, EndToEndRunsAndLearns) {
  AutoHEnsConfig cfg;
  cfg.pool_size = 2;
  cfg.k = 2;
  cfg.algo = GetParam();
  cfg.proxy.dataset_ratio = 0.6;
  cfg.proxy.bagging = 1;
  cfg.proxy.train = FastTrain();
  cfg.proxy.train.max_epochs = 15;
  cfg.gradient.max_epochs = 12;
  cfg.train = FastTrain();
  cfg.bagging_splits = 2;
  cfg.seed = 10;
  AutoHEnsResult result =
      RunAutoHEnsGnn(TestGraph(), TestSplit(), TinyPool(), cfg);
  EXPECT_EQ(result.pool_names.size(), 2u);
  EXPECT_EQ(result.layers.size(), 2u);
  EXPECT_EQ(result.beta.size(), 2u);
  EXPECT_GT(result.test_accuracy, 0.6);
  EXPECT_EQ(result.bagging_rounds_run, 2);
  EXPECT_GT(result.selection_seconds, 0.0);
  EXPECT_GT(result.search_seconds, 0.0);
  EXPECT_GT(result.retrain_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(BothAlgorithms, AutoHEnsAlgoTest,
                         ::testing::Values(SearchAlgo::kGradient,
                                           SearchAlgo::kAdaptive),
                         [](const auto& info) {
                           return info.param == SearchAlgo::kGradient
                                      ? "Gradient"
                                      : "Adaptive";
                         });

TEST(AutoHEnsTest, TimeBudgetShedsBaggingRounds) {
  AutoHEnsConfig cfg;
  cfg.pool_size = 1;
  cfg.k = 1;
  cfg.algo = SearchAlgo::kAdaptive;
  cfg.fixed_pool = {TinyPool()[0]};  // skip proxy stage
  cfg.train = FastTrain();
  cfg.train.max_epochs = 10;
  cfg.adaptive.train = cfg.train;
  cfg.bagging_splits = 5;
  cfg.time_budget_seconds = 1e-9;  // already exceeded after round one
  cfg.seed = 11;
  AutoHEnsResult result =
      RunAutoHEnsGnn(TestGraph(), TestSplit(), {}, cfg);
  EXPECT_EQ(result.bagging_rounds_run, 1);
}

TEST(AutoHEnsTest, FixedPoolSkipsSelection) {
  AutoHEnsConfig cfg;
  cfg.pool_size = 2;
  cfg.k = 1;
  cfg.algo = SearchAlgo::kAdaptive;
  cfg.fixed_pool = TinyPool();
  cfg.train = FastTrain();
  cfg.train.max_epochs = 10;
  cfg.adaptive.train = cfg.train;
  cfg.bagging_splits = 1;
  cfg.seed = 12;
  AutoHEnsResult result =
      RunAutoHEnsGnn(TestGraph(), TestSplit(), {}, cfg);
  EXPECT_EQ(result.selection_seconds, 0.0);
  EXPECT_EQ(result.pool_names,
            (std::vector<std::string>{"GCN", "SGC"}));
}

// --- Cooperative cancellation -------------------------------------------
// Each pipeline stage polls its CancelToken at unit boundaries (candidate,
// probe, epoch) and unwinds with `interrupted` set instead of finishing.

TEST(CancelTest, PreCancelledProxyEvalScoresNothing) {
  CancelToken cancel;
  cancel.Cancel();
  ProxyConfig cfg;
  cfg.bagging = 1;
  cfg.train = FastTrain();
  cfg.train.max_epochs = 5;
  cfg.cancel = &cancel;
  ProxyEvalResult result = ProxyEvaluate(TinyPool(), TestGraph(), cfg, 3);
  EXPECT_TRUE(result.interrupted);
  EXPECT_TRUE(result.ranked.empty());
}

TEST(CancelTest, ProxyEvalStopsAfterFirstCandidate) {
  CancelToken cancel;
  ProxyConfig cfg;
  cfg.bagging = 1;
  cfg.num_threads = 1;  // sequential, so the count below is deterministic
  cfg.train = FastTrain();
  cfg.train.max_epochs = 5;
  cfg.cancel = &cancel;
  cfg.on_candidate_done = [&](int, const CandidateScore&) { cancel.Cancel(); };
  ProxyEvalResult result = ProxyEvaluate(TinyPool(), TestGraph(), cfg, 3);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.ranked.size(), 1u);
}

TEST(CancelTest, AdaptiveSearchStopsBetweenProbes) {
  CancelToken cancel;
  AdaptiveSearchConfig cfg;
  cfg.k = 2;
  cfg.train = FastTrain();
  cfg.train.max_epochs = 5;
  cfg.seed = 6;
  cfg.cancel = &cancel;
  int probes = 0;
  cfg.on_probe_done = [&](int, int, double) {
    ++probes;
    cancel.Cancel();
  };
  AdaptiveSearchResult result =
      SearchAdaptive(TinyPool(), TestGraph(), TestSplit(), cfg);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(probes, 1);
}

TEST(CancelTest, GradientSearchStopsAtEpochBoundary) {
  CancelToken cancel;
  GradientSearchConfig cfg;
  cfg.k = 2;
  cfg.max_epochs = 30;
  cfg.patience = 30;
  cfg.train = FastTrain();
  cfg.seed = 7;
  cfg.cancel = &cancel;
  cfg.checkpoint_every = 2;
  int checkpoints = 0;
  cfg.on_checkpoint = [&](const GradientSearchState& st) {
    ++checkpoints;
    if (st.epoch >= 4) cancel.Cancel();
  };
  GradientSearchResult result =
      SearchGradient(TinyPool(), TestGraph(), TestSplit(), cfg);
  EXPECT_TRUE(result.interrupted);
  // Epochs are 1-based, so checkpoints fire at epochs 2 and 4; the cancel
  // lands after the second and the loop exits before epoch 5 ever runs.
  EXPECT_EQ(checkpoints, 2);
}

// --- Validating pipeline entry point -------------------------------------

TEST(AutoHEnsCheckedTest, RejectsMalformedInputs) {
  AutoHEnsConfig cfg;
  cfg.train = FastTrain();
  // No candidates and no fixed pool.
  EXPECT_FALSE(
      RunAutoHEnsGnnChecked(TestGraph(), TestSplit(), {}, cfg).ok());
  // Empty train / val splits.
  DataSplit no_train = TestSplit();
  no_train.train.clear();
  EXPECT_FALSE(
      RunAutoHEnsGnnChecked(TestGraph(), no_train, TinyPool(), cfg).ok());
  DataSplit no_val = TestSplit();
  no_val.val.clear();
  EXPECT_FALSE(
      RunAutoHEnsGnnChecked(TestGraph(), no_val, TinyPool(), cfg).ok());
  // Out-of-range node index.
  DataSplit oob = TestSplit();
  oob.val.push_back(TestGraph().num_nodes());
  EXPECT_FALSE(
      RunAutoHEnsGnnChecked(TestGraph(), oob, TinyPool(), cfg).ok());
  // Nonsensical knobs.
  AutoHEnsConfig bad_pool = cfg;
  bad_pool.pool_size = 0;
  EXPECT_FALSE(
      RunAutoHEnsGnnChecked(TestGraph(), TestSplit(), TinyPool(), bad_pool)
          .ok());
  AutoHEnsConfig bad_k = cfg;
  bad_k.k = -1;
  EXPECT_FALSE(
      RunAutoHEnsGnnChecked(TestGraph(), TestSplit(), TinyPool(), bad_k)
          .ok());
  AutoHEnsConfig bad_frac = cfg;
  bad_frac.val_fraction = 1.5;
  EXPECT_FALSE(
      RunAutoHEnsGnnChecked(TestGraph(), TestSplit(), TinyPool(), bad_frac)
          .ok());
}

TEST(AutoHEnsCheckedTest, HappyPathIsBitwiseIdenticalToUnchecked) {
  AutoHEnsConfig cfg;
  cfg.pool_size = 1;
  cfg.k = 1;
  cfg.algo = SearchAlgo::kAdaptive;
  cfg.fixed_pool = {TinyPool()[0]};
  cfg.train = FastTrain();
  cfg.train.max_epochs = 8;
  cfg.adaptive.train = cfg.train;
  cfg.bagging_splits = 1;
  cfg.seed = 13;
  AutoHEnsResult plain = RunAutoHEnsGnn(TestGraph(), TestSplit(), {}, cfg);
  auto checked = RunAutoHEnsGnnChecked(TestGraph(), TestSplit(), {}, cfg);
  ASSERT_TRUE(checked.ok());
  EXPECT_EQ(plain.val_accuracy, checked.value().val_accuracy);
  ASSERT_EQ(plain.probs.size(), checked.value().probs.size());
  EXPECT_EQ(std::memcmp(plain.probs.data(), checked.value().probs.data(),
                        sizeof(double) * plain.probs.size()),
            0);
}

}  // namespace
}  // namespace ahg
