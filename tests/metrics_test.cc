#include <cmath>

#include "gtest/gtest.h"
#include "metrics/aggregate.h"
#include "metrics/kendall.h"
#include "metrics/metrics.h"
#include "metrics/wilcoxon.h"

namespace ahg {
namespace {

TEST(AccuracyTest, CountsArgmaxMatches) {
  Matrix probs = Matrix::FromRows({{0.9, 0.1}, {0.2, 0.8}, {0.6, 0.4}});
  std::vector<int> labels{0, 1, 1};
  EXPECT_NEAR(Accuracy(probs, labels, {0, 1, 2}), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(Accuracy(probs, labels, {0, 1}), 1.0, 1e-12);
}

TEST(MacroF1Test, PerfectPredictionsGiveOne) {
  Matrix probs = Matrix::FromRows({{1, 0}, {0, 1}});
  EXPECT_NEAR(MacroF1(probs, {0, 1}, {0, 1}, 2), 1.0, 1e-12);
}

TEST(MacroF1Test, KnownConfusion) {
  // Predictions: class0, class0, class1; truth: 0, 1, 1.
  Matrix probs = Matrix::FromRows({{0.9, 0.1}, {0.8, 0.2}, {0.3, 0.7}});
  // class0: tp=1 fp=1 fn=0 -> F1 = 2/3; class1: tp=1 fp=0 fn=1 -> F1 = 2/3.
  EXPECT_NEAR(MacroF1(probs, {0, 1, 1}, {0, 1, 2}, 2), 2.0 / 3.0, 1e-12);
}

TEST(RocAucTest, PerfectSeparation) {
  EXPECT_NEAR(RocAuc({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}), 1.0, 1e-12);
}

TEST(RocAucTest, ReversedScoresGiveZero) {
  EXPECT_NEAR(RocAuc({0.1, 0.2, 0.8, 0.9}, {1, 1, 0, 0}), 0.0, 1e-12);
}

TEST(RocAucTest, TiesGiveHalfCredit) {
  EXPECT_NEAR(RocAuc({0.5, 0.5}, {1, 0}), 0.5, 1e-12);
}

TEST(RocAucTest, KnownMixedCase) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}: pairs won 3/4.
  EXPECT_NEAR(RocAuc({0.8, 0.4, 0.6, 0.2}, {1, 1, 0, 0}), 0.75, 1e-12);
}

TEST(KendallTest, PerfectAgreement) {
  EXPECT_NEAR(KendallTau({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0, 1e-12);
}

TEST(KendallTest, PerfectDisagreement) {
  EXPECT_NEAR(KendallTau({1, 2, 3, 4}, {4, 3, 2, 1}), -1.0, 1e-12);
}

TEST(KendallTest, KnownPartial) {
  // One discordant pair among six -> (5 - 1) / 6.
  EXPECT_NEAR(KendallTau({1, 2, 3, 4}, {1, 2, 4, 3}), 4.0 / 6.0, 1e-12);
}

TEST(KendallTest, ConstantVectorGivesZero) {
  EXPECT_EQ(KendallTau({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(KendallTest, TieCorrectedSymmetry) {
  const double t1 = KendallTau({1, 2, 2, 3}, {1, 2, 3, 4});
  const double t2 = KendallTau({1, 2, 3, 4}, {1, 2, 2, 3});
  EXPECT_NEAR(t1, t2, 1e-12);
  EXPECT_GT(t1, 0.8);
}

TEST(WilcoxonTest, IdenticalSamplesGiveOne) {
  EXPECT_EQ(WilcoxonSignedRankTest({1, 2, 3}, {1, 2, 3}), 1.0);
}

TEST(WilcoxonTest, ClearlyShiftedSmallSampleIsSignificant) {
  std::vector<double> a{1.5, 2.1, 1.8, 2.4, 1.9, 2.2, 2.0, 1.7};
  std::vector<double> b;
  for (double v : a) b.push_back(v - 1.0);
  EXPECT_LT(WilcoxonSignedRankTest(a, b), 0.05);
}

TEST(WilcoxonTest, SymmetricNoiseIsInsignificant) {
  std::vector<double> a{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  std::vector<double> b{1.1, 1.9, 3.1, 3.9, 5.1, 4.9};
  EXPECT_GT(WilcoxonSignedRankTest(a, b), 0.2);
}

TEST(WilcoxonTest, LargeSampleNormalApproximation) {
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(i + 0.5);  // consistently above
    b.push_back(i);
  }
  EXPECT_LT(WilcoxonSignedRankTest(a, b), 1e-4);
}

TEST(SummarizeTest, KnownStats) {
  RunStats s = Summarize({2.0, 4.0, 6.0});
  EXPECT_NEAR(s.mean, 4.0, 1e-12);
  EXPECT_NEAR(s.stddev, 2.0, 1e-12);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 6.0);
  EXPECT_EQ(s.count, 3);
}

TEST(SummarizeTest, SingleValueHasZeroStd) {
  RunStats s = Summarize({5.0});
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(FormatMeanStdTest, PercentRendering) {
  RunStats s = Summarize({0.861, 0.863});
  EXPECT_EQ(FormatMeanStd(s, /*percent=*/true), "86.2±0.1");
}

TEST(AverageRankScoreTest, BestMethodGetsLowestRank) {
  // Two datasets, three methods; method 2 always best.
  std::vector<std::vector<double>> scores{{0.5, 0.6, 0.9}, {0.4, 0.7, 0.8}};
  std::vector<double> ranks = AverageRankScore(scores);
  EXPECT_NEAR(ranks[2], 1.0, 1e-12);
  EXPECT_NEAR(ranks[1], 2.0, 1e-12);
  EXPECT_NEAR(ranks[0], 3.0, 1e-12);
}

TEST(AverageRankScoreTest, TiesShareRank) {
  std::vector<std::vector<double>> scores{{0.5, 0.5}};
  std::vector<double> ranks = AverageRankScore(scores);
  EXPECT_NEAR(ranks[0], 1.5, 1e-12);
  EXPECT_NEAR(ranks[1], 1.5, 1e-12);
}

}  // namespace
}  // namespace ahg
