#include "tensor/matrix.h"

#include <cmath>

#include "gtest/gtest.h"
#include "tensor/alloc_tracker.h"
#include "util/rng.h"

namespace ahg {
namespace {

TEST(MatrixTest, ConstructZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(MatrixTest, FromRowsAndAccess) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, CopyIsDeep) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = a;
  b(0, 0) = 99;
  EXPECT_EQ(a(0, 0), 1.0);
}

TEST(MatrixTest, MoveTransfersOwnership) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = std::move(a);
  EXPECT_EQ(b(0, 1), 2.0);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): testing move
}

TEST(MatrixTest, MatMulKnownProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = MatMul(a, b);
  EXPECT_TRUE(AllClose(c, Matrix::FromRows({{19, 22}, {43, 50}}), 1e-12));
}

TEST(MatrixTest, MatMulIdentity) {
  Rng rng(3);
  Matrix a = Matrix::Gaussian(4, 4, 1.0, &rng);
  EXPECT_TRUE(AllClose(MatMul(a, Matrix::Identity(4)), a, 1e-12));
}

TEST(MatrixTest, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng(5);
  Matrix a = Matrix::Gaussian(3, 5, 1.0, &rng);
  Matrix b = Matrix::Gaussian(3, 4, 1.0, &rng);
  // A^T * B via MatMulTransA == Transpose(A) * B.
  EXPECT_TRUE(AllClose(MatMulTransA(a, b), MatMul(Transpose(a), b), 1e-10));
  Matrix c = Matrix::Gaussian(6, 5, 1.0, &rng);
  // A * C^T via MatMulTransB == A * Transpose(C).
  EXPECT_TRUE(AllClose(MatMulTransB(a, c), MatMul(a, Transpose(c)), 1e-10));
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a = Matrix::FromRows({{1, -2}});
  Matrix b = Matrix::FromRows({{3, 4}});
  EXPECT_TRUE(AllClose(Add(a, b), Matrix::FromRows({{4, 2}}), 1e-12));
  EXPECT_TRUE(AllClose(Sub(a, b), Matrix::FromRows({{-2, -6}}), 1e-12));
  EXPECT_TRUE(AllClose(CWiseMul(a, b), Matrix::FromRows({{3, -8}}), 1e-12));
  EXPECT_TRUE(AllClose(Scale(a, -2.0), Matrix::FromRows({{-2, 4}}), 1e-12));
}

TEST(MatrixTest, RowSoftmaxRowsSumToOne) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {-1, 0, 1000}});
  Matrix s = RowSoftmax(a);
  for (int r = 0; r < 2; ++r) {
    double total = 0.0;
    for (int c = 0; c < 3; ++c) {
      EXPECT_GE(s(r, c), 0.0);
      total += s(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
  // Large logits stay finite (stability).
  EXPECT_NEAR(s(1, 2), 1.0, 1e-9);
}

TEST(MatrixTest, RowLogSoftmaxMatchesLogOfSoftmax) {
  Matrix a = Matrix::FromRows({{0.3, -1.2, 2.0}});
  Matrix ls = RowLogSoftmax(a);
  Matrix s = RowSoftmax(a);
  for (int c = 0; c < 3; ++c) EXPECT_NEAR(ls(0, c), std::log(s(0, c)), 1e-12);
}

TEST(MatrixTest, ArgMaxRowTiesToLowestIndex) {
  Matrix a = Matrix::FromRows({{1, 5, 5}, {7, 0, 1}});
  EXPECT_EQ(a.ArgMaxRow(0), 1);
  EXPECT_EQ(a.ArgMaxRow(1), 0);
}

TEST(MatrixTest, SumAndSquaredNorm) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, -4}});
  EXPECT_NEAR(a.Sum(), 2.0, 1e-12);
  EXPECT_NEAR(a.SquaredNorm(), 30.0, 1e-12);
}

TEST(MatrixTest, AxpyInPlace) {
  Matrix a = Matrix::FromRows({{1, 1}});
  a.AxpyInPlace(2.0, Matrix::FromRows({{3, 4}}));
  EXPECT_TRUE(AllClose(a, Matrix::FromRows({{7, 9}}), 1e-12));
}

TEST(AllocTrackerTest, TracksMatrixLifetime) {
  const int64_t before = AllocTracker::CurrentBytes();
  {
    Matrix m(100, 10);
    EXPECT_EQ(AllocTracker::CurrentBytes() - before,
              static_cast<int64_t>(100 * 10 * sizeof(double)));
  }
  EXPECT_EQ(AllocTracker::CurrentBytes(), before);
}

TEST(AllocTrackerTest, PeakReflectsHighWaterMark) {
  AllocTracker::ResetPeak();
  const int64_t base = AllocTracker::PeakBytes();
  {
    Matrix big(1000, 100);
    EXPECT_GE(AllocTracker::PeakBytes(),
              base + static_cast<int64_t>(1000 * 100 * sizeof(double)));
  }
  // Peak persists after the allocation is gone.
  EXPECT_GE(AllocTracker::PeakBytes(),
            base + static_cast<int64_t>(1000 * 100 * sizeof(double)));
}

}  // namespace
}  // namespace ahg
