// Stress tests pinning the ThreadPool contract the parallel kernels rely
// on: FIFO dequeue order, Wait() covering everything submitted so far,
// destruction draining queued work, and nested ParallelFor calls running
// inline instead of deadlocking or oversubscribing.
#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/thread_pool.h"

namespace ahg {
namespace {

TEST(ThreadPoolStressTest, SubmitWaitHammer) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  // Repeated Submit/Wait rounds: Wait must observe every task of its round.
  for (int round = 0; round < 50; ++round) {
    const int tasks = 1 + round % 7;
    for (int t = 0; t < tasks; ++t) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    pool.Wait();
  }
  int expected = 0;
  for (int round = 0; round < 50; ++round) expected += 1 + round % 7;
  EXPECT_EQ(done.load(), expected);
}

TEST(ThreadPoolStressTest, SingleWorkerRunsFifo) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolStressTest, ConcurrentSubmittersAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&pool, &done] {
      for (int i = 0; i < 200; ++i) {
        pool.Submit([&done] { done.fetch_add(1); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.Wait();
  EXPECT_EQ(done.load(), 4 * 200);
}

TEST(ThreadPoolStressTest, DestructorDrainsQueuedWork) {
  // The destructor contract: queued-but-unstarted tasks still run before
  // join. With 1 worker and many tasks most of the queue is still pending
  // when the destructor fires.
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    // No Wait(): destruction must drain.
  }
  EXPECT_EQ(done.load(), 500);
}

TEST(ThreadPoolStressTest, NestedParallelForCompletesAndRunsInline) {
  std::atomic<int> outer_hits{0};
  std::atomic<int> inner_hits{0};
  std::atomic<int> nested_regions{0};
  ParallelFor(8, 4, [&](int) {
    outer_hits.fetch_add(1);
    EXPECT_TRUE(InParallelRegion());
    // The nested loop must run inline on this worker — no second pool, no
    // deadlock — and still cover its full range.
    ParallelFor(16, 4, [&](int) { inner_hits.fetch_add(1); });
    ParallelForChunked(32, 1 << 20, [&](int64_t begin, int64_t end) {
      nested_regions.fetch_add(static_cast<int>(end - begin));
    });
  });
  EXPECT_EQ(outer_hits.load(), 8);
  EXPECT_EQ(inner_hits.load(), 8 * 16);
  EXPECT_EQ(nested_regions.load(), 8 * 32);
  EXPECT_FALSE(InParallelRegion());
}

TEST(ThreadPoolStressTest, DeeplyNestedParallelForNoDeadlock) {
  std::atomic<int> leaves{0};
  ParallelFor(4, 2, [&](int) {
    ParallelFor(4, 2, [&](int) {
      ParallelFor(4, 2, [&](int) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 4 * 4 * 4);
}

TEST(ThreadPoolStressTest, ParallelForChunkedCoversRangeOnce) {
  ScopedMinParallelWork min_work(1);
  ScopedNumThreads threads(5);
  std::vector<std::atomic<int>> hits(1000);
  ParallelForChunked(1000, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolStressTest, ParallelForChunkedInlineBelowMinGrain) {
  // Tiny total work stays on the calling thread as a single chunk.
  ScopedNumThreads threads(8);
  int calls = 0;
  bool inline_region = true;
  ParallelForChunked(16, 1, [&](int64_t begin, int64_t end) {
    ++calls;
    inline_region = inline_region && !InParallelRegion();
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 16);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(inline_region);
}

TEST(ThreadPoolStressTest, ScopedSettingsRestore) {
  const int before = GetNumThreads();
  {
    ScopedNumThreads threads(3);
    EXPECT_EQ(GetNumThreads(), 3);
    ScopedNumThreads noop(0);
    EXPECT_EQ(GetNumThreads(), 3);
  }
  EXPECT_EQ(GetNumThreads(), before);
  const int64_t grain_before = GetMinParallelWork();
  {
    ScopedMinParallelWork grain(7);
    EXPECT_EQ(GetMinParallelWork(), 7);
  }
  EXPECT_EQ(GetMinParallelWork(), grain_before);
}

}  // namespace
}  // namespace ahg
