// Locality plane: permutation determinism and serialization, the
// rank-order invariant on permuted CSRs, exact-threshold DeltaCsr
// compaction, and the bitwise-conformance matrix — lone engine across six
// zoo families, partitioned engine across part counts, and the dynamic
// stream including a compaction-triggered mid-stream re-reorder.
#include "graph/reorder.h"

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "dyn/delta_csr.h"
#include "dyn/mutation.h"
#include "dyn/snapshot.h"
#include "dyn/stream_server.h"
#include "graph/graph.h"
#include "graph/split.h"
#include "graph/statistics.h"
#include "graph/synthetic.h"
#include "gtest/gtest.h"
#include "nn/linear.h"
#include "obs/metrics.h"
#include "partition/partitioned_engine.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "tensor/sparse_matrix.h"
#include "util/rng.h"

namespace ahg {
namespace {

Graph TestGraph(int num_nodes = 96, uint64_t seed = 7) {
  SyntheticConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.num_classes = 4;
  cfg.feature_dim = 6;
  cfg.avg_degree = 4.0;
  cfg.seed = seed;
  return GenerateSbmGraph(cfg);
}

// Untrained model + head snapshotted into ServableModel layout; weights
// depend only on (family, dims, seed), never on the graph's node order.
serve::ServableModel MakeServable(const Graph& graph, ModelFamily family,
                                  uint64_t seed = 11) {
  serve::ServableModel model;
  // Engines cache hidden states per model version, so each family needs a
  // distinct version when served through one engine.
  model.version = 1 + static_cast<int>(family);
  model.num_classes = graph.num_classes();
  model.config.family = family;
  model.config.in_dim = graph.feature_dim();
  model.config.hidden_dim = 8;
  model.config.num_layers = 2;
  model.config.seed = seed;
  std::unique_ptr<GnnModel> zoo = BuildModel(model.config);
  Rng head_rng(model.config.seed ^ 0x5ca1ab1eULL);
  Linear head(zoo->params(), model.config.hidden_dim, model.num_classes,
              /*bias=*/true, &head_rng);
  model.params = zoo->params()->Snapshot();
  return model;
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int r = 0; r < a.rows(); ++r) {
    if (std::memcmp(a.Row(r), b.Row(r),
                    static_cast<size_t>(a.cols()) * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

const ReorderStrategy kActiveStrategies[] = {
    ReorderStrategy::kRcm, ReorderStrategy::kHubCluster,
    ReorderStrategy::kShuffle};

TEST(ReorderTest, StrategyNamesRoundTrip) {
  for (ReorderStrategy s :
       {ReorderStrategy::kNone, ReorderStrategy::kRcm,
        ReorderStrategy::kHubCluster, ReorderStrategy::kShuffle}) {
    auto parsed = ParseReorderStrategy(ReorderStrategyName(s));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), s);
  }
  EXPECT_FALSE(ParseReorderStrategy("metis").ok());
}

TEST(ReorderTest, PermutationIsDeterministicPerGraphStrategySeed) {
  const Graph graph = TestGraph();
  for (ReorderStrategy s : kActiveStrategies) {
    const NodePermutation a = ComputeReorder(graph, s, 42);
    const NodePermutation b = ComputeReorder(graph, s, 42);
    EXPECT_EQ(a.to_internal, b.to_internal);
    EXPECT_EQ(a.to_external, b.to_external);
    EXPECT_EQ(a.Serialize(), b.Serialize());
  }
  // Seed actually matters for the seeded strategy.
  const NodePermutation s1 =
      ComputeReorder(graph, ReorderStrategy::kShuffle, 1);
  const NodePermutation s2 =
      ComputeReorder(graph, ReorderStrategy::kShuffle, 2);
  EXPECT_NE(s1.to_internal, s2.to_internal);
}

TEST(ReorderTest, PermutationIsABijection) {
  const Graph graph = TestGraph();
  for (ReorderStrategy s : kActiveStrategies) {
    const NodePermutation perm = ComputeReorder(graph, s, 3);
    ASSERT_EQ(perm.num_nodes(), graph.num_nodes());
    for (int e = 0; e < perm.num_nodes(); ++e) {
      const int i = perm.to_internal[e];
      ASSERT_GE(i, 0);
      ASSERT_LT(i, perm.num_nodes());
      EXPECT_EQ(perm.to_external[i], e);
    }
  }
}

TEST(ReorderTest, SerializeDeserializeRoundTrip) {
  const Graph graph = TestGraph(40);
  const NodePermutation perm =
      ComputeReorder(graph, ReorderStrategy::kHubCluster, 99);
  auto back = NodePermutation::Deserialize(perm.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().strategy, perm.strategy);
  EXPECT_EQ(back.value().seed, perm.seed);
  EXPECT_EQ(back.value().to_internal, perm.to_internal);
  EXPECT_EQ(back.value().to_external, perm.to_external);
  EXPECT_FALSE(NodePermutation::Deserialize("not a perm").ok());
}

TEST(ReorderTest, IdentityExtensionAndComposition) {
  NodePermutation id = NodePermutation::Identity(5);
  for (int e = 0; e < 5; ++e) EXPECT_EQ(id.to_internal[e], e);
  NodePermutation grown = id.ExtendedTo(8);
  for (int e = 5; e < 8; ++e) {
    EXPECT_EQ(grown.to_internal[e], e);
    EXPECT_EQ(grown.to_external[e], e);
  }
  const std::vector<int> remap = {2, 0, 1, 4, 3};
  const NodePermutation composed = id.ComposedWith(remap);
  for (int e = 0; e < 5; ++e) EXPECT_EQ(composed.to_internal[e], remap[e]);
}

// The rank-order invariant: every permuted CSR row stores the SAME value
// sequence as the original external row, with columns mapped — entries
// ascend by external id (rank), never re-sorted by internal id.
TEST(ReorderTest, PermutedCsrKeepsExternalValueSequence) {
  const Graph graph = TestGraph();
  const SparseMatrix& orig = graph.Adjacency(AdjacencyKind::kSymNorm);
  for (ReorderStrategy s : kActiveStrategies) {
    const Graph reordered = ReorderGraph(graph, s, 5);
    ASSERT_NE(reordered.permutation(), nullptr);
    const NodePermutation& perm = *reordered.permutation();
    const SparseMatrix& got = reordered.Adjacency(AdjacencyKind::kSymNorm);
    for (int e = 0; e < graph.num_nodes(); ++e) {
      const int r = perm.to_internal[e];
      const int64_t nnz = orig.RowNnz(e);
      ASSERT_EQ(got.RowNnz(r), nnz);
      const int64_t ob = orig.row_ptr()[e];
      const int64_t gb = got.row_ptr()[r];
      int64_t prev_rank = -1;
      for (int64_t k = 0; k < nnz; ++k) {
        // Same external column, in the same position.
        const int rank = perm.to_external[got.col_idx()[gb + k]];
        EXPECT_EQ(rank, orig.col_idx()[ob + k]);
        EXPECT_GT(rank, prev_rank);  // ascending external id
        prev_rank = rank;
      }
      // Values byte-copied, not recomputed.
      EXPECT_EQ(std::memcmp(orig.values().data() + ob,
                            got.values().data() + gb,
                            static_cast<size_t>(nnz) * sizeof(double)),
                0);
    }
  }
}

TEST(ReorderTest, SplitProjectionCrossesTheBoundaryOnce) {
  const Graph graph = TestGraph();
  Rng rng(3);
  const DataSplit split = RandomSplit(graph, 0.5, 0.25, &rng);
  const Graph reordered = ReorderGraph(graph, ReorderStrategy::kRcm, 5);
  const DataSplit projected = ProjectSplit(reordered.permutation(), split);
  ASSERT_EQ(projected.train.size(), split.train.size());
  for (size_t i = 0; i < split.train.size(); ++i) {
    EXPECT_EQ(projected.train[i],
              reordered.permutation()->to_internal[split.train[i]]);
  }
  // Null permutation = identity.
  const DataSplit same = ProjectSplit(nullptr, split);
  EXPECT_EQ(same.train, split.train);
  EXPECT_EQ(same.val, split.val);
  EXPECT_EQ(same.test, split.test);
}

TEST(ReorderTest, LocalityStatsImproveAndGaugesPublish) {
  const Graph graph = TestGraph(200, 9);
  const Graph shuffled = ReorderGraph(graph, ReorderStrategy::kShuffle, 5);
  const Graph rcm = ReorderGraph(graph, ReorderStrategy::kRcm, 5);
  const GraphStatistics bad = ComputeStatistics(shuffled);
  const GraphStatistics good = ComputeStatistics(rcm);
  // RCM minimizes bandwidth; the shuffle is the pessimal baseline.
  EXPECT_LT(good.bandwidth, bad.bandwidth);
  EXPECT_GT(good.hub_mass, 0.0);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  PublishGraphGauges(good, &reg, "reorder_test_");
  EXPECT_EQ(reg.GetGauge("graph.reorder_test_nodes")->Value(),
            static_cast<double>(good.num_nodes));
  EXPECT_EQ(reg.GetGauge("graph.reorder_test_bandwidth")->Value(),
            static_cast<double>(good.bandwidth));
  EXPECT_EQ(reg.GetGauge("graph.reorder_test_mean_column_gap")->Value(),
            good.mean_column_gap);
  EXPECT_EQ(reg.GetGauge("graph.reorder_test_hub_mass")->Value(),
            good.hub_mass);
}

// Satellite regression: MaybeCompact must fire AT the documented 25%
// threshold, not strictly above it (the historical off-by-one).
TEST(DeltaCsrCompactionTest, FiresAtExactQuarterOverlay) {
  const int n = 8;  // 2 of 8 rows = exactly 0.25
  std::vector<CooEntry> entries;
  for (int r = 0; r < n; ++r) {
    entries.push_back({r, (r + 1) % n, 1.0});
  }
  auto base = std::make_shared<const SparseMatrix>(
      SparseMatrix::FromCoo(n, n, entries));
  dyn::DeltaCsr d(base);
  d.OverrideRow(0, {1, 2}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(d.overlay_fraction(), 0.125);
  EXPECT_FALSE(d.MaybeCompact());
  EXPECT_EQ(d.overridden_rows(), 1);
  d.OverrideRow(3, {0, 5}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(d.overlay_fraction(), 0.25);
  EXPECT_TRUE(d.MaybeCompact());  // AT the threshold
  EXPECT_EQ(d.overridden_rows(), 0);
  // The fold preserved the logical matrix.
  EXPECT_EQ(d.Row(0).nnz, 2);
  EXPECT_EQ(d.Row(3).cols[1], 5);
}

TEST(DeltaCsrCompactionTest, ColRankDrivesOrderValidationAndLookup) {
  const int n = 4;
  std::vector<CooEntry> entries = {{0, 1, 1.0}};
  auto base = std::make_shared<const SparseMatrix>(
      SparseMatrix::FromCoo(n, n, entries));
  dyn::DeltaCsr d(base);
  // Reverse rank: column c ranks as n-1-c, so a descending-id row is
  // ascending-rank and must be accepted.
  auto rank = std::make_shared<std::vector<int>>(std::vector<int>{3, 2, 1, 0});
  d.SetColRank(rank);
  d.OverrideRow(2, {3, 1, 0}, {1.0, 2.0, 3.0});
  EXPECT_EQ(d.Row(2).nnz, 3);
  EXPECT_EQ(d.RankOf(0), 3);
  // Columns beyond the rank vector rank as themselves (ExtendedTo tail).
  d.Grow(6, 6);
  EXPECT_EQ(d.RankOf(5), 5);
}

// Lone-engine conformance: an engine on the reordered graph serves
// byte-identical probabilities to an engine on the original, across every
// zoo family the serving path exercises.
TEST(ReorderConformanceTest, LoneEngineAllFamilies) {
  const Graph graph = TestGraph();
  const ModelFamily families[] = {ModelFamily::kGcn,   ModelFamily::kMlp,
                                  ModelFamily::kTagcn, ModelFamily::kGin,
                                  ModelFamily::kGcnii, ModelFamily::kJkMax};
  for (ReorderStrategy s : kActiveStrategies) {
    const Graph reordered = ReorderGraph(graph, s, 13);
    serve::InferenceEngine plain(&graph, serve::EngineOptions{});
    serve::InferenceEngine permuted(&reordered, serve::EngineOptions{});
    for (ModelFamily family : families) {
      SCOPED_TRACE(std::string(ReorderStrategyName(s)) + "/" +
                   ModelFamilyName(family));
      const serve::ServableModel model = MakeServable(graph, family);
      auto ref = plain.PredictAll(model);
      auto got = permuted.PredictAll(model);
      ASSERT_TRUE(ref.ok() && got.ok());
      // PredictAll returns EXTERNAL row order on both engines.
      EXPECT_TRUE(BitwiseEqual(ref.value(), got.value()));
      // Point queries speak external ids too.
      const std::vector<int> nodes = {17, 0, 95, 42};
      auto ref_rows = plain.PredictNodes(model, nodes);
      auto got_rows = permuted.PredictNodes(model, nodes);
      ASSERT_TRUE(ref_rows.ok() && got_rows.ok());
      EXPECT_TRUE(BitwiseEqual(ref_rows.value(), got_rows.value()));
    }
  }
}

TEST(ReorderConformanceTest, PartitionedEngineAcrossPartCounts) {
  const Graph graph = TestGraph(150, 21);
  std::vector<int> all_nodes;
  for (int i = 0; i < graph.num_nodes(); ++i) all_nodes.push_back(i);
  serve::InferenceEngine lone(&graph, serve::EngineOptions{});
  for (ModelFamily family : {ModelFamily::kGcn, ModelFamily::kSgc}) {
    const serve::ServableModel model = MakeServable(graph, family);
    auto ref = lone.PredictNodes(model, all_nodes);
    ASSERT_TRUE(ref.ok());
    for (ReorderStrategy s :
         {ReorderStrategy::kRcm, ReorderStrategy::kHubCluster}) {
      const Graph reordered = ReorderGraph(graph, s, 31);
      for (int parts : {1, 2, 4}) {
        SCOPED_TRACE(std::string(ModelFamilyName(family)) + "/" +
                     ReorderStrategyName(s) + "/P=" + std::to_string(parts));
        auto engine = partition::PartitionedEngine::Create(reordered, parts);
        ASSERT_TRUE(engine.ok());
        auto got = engine.value()->PredictNodes(model, all_nodes);
        ASSERT_TRUE(got.ok());
        EXPECT_TRUE(BitwiseEqual(ref.value(), got.value()));
      }
    }
  }
}

TEST(ReorderConformanceTest, PartitionPlanKeepsRankOrderPerPart) {
  const Graph reordered =
      ReorderGraph(TestGraph(120, 4), ReorderStrategy::kHubCluster, 8);
  auto plan = partition::PartitionPlan::Build(reordered, 3);
  ASSERT_TRUE(plan.ok());
  for (const partition::PartitionPlan::Part& part : plan.value().parts) {
    ASSERT_NE(part.adj.col_rank(), nullptr);
    for (int l : part.owned_locals) {
      const dyn::DeltaCsr::RowRef row = part.adj.Row(l);
      for (int64_t k = 1; k < row.nnz; ++k) {
        EXPECT_LT(part.adj.RankOf(row.cols[k - 1]),
                  part.adj.RankOf(row.cols[k]));
      }
    }
  }
}

// The compressed hub-segment layout is a pure re-encoding: SpMM results
// must be bitwise unchanged with the layout on or off.
TEST(ReorderConformanceTest, HubSegmentsAreBitwiseNeutral) {
  const Graph reordered =
      ReorderGraph(TestGraph(200, 6), ReorderStrategy::kHubCluster, 6);
  SparseMatrix plain = reordered.Adjacency(AdjacencyKind::kSymNorm);
  plain.ClearHubSegments();
  SparseMatrix compressed = plain;
  compressed.BuildHubSegments(/*min_row_nnz=*/3);
  ASSERT_NE(compressed.hub_segments(), nullptr);
  EXPECT_GT(compressed.hub_segments()->num_hub_rows, 0);
  Matrix x(plain.cols(), 8);
  Rng rng(12);
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.cols(); ++c) x(r, c) = rng.Normal();
  }
  EXPECT_TRUE(BitwiseEqual(plain.Spmm(x), compressed.Spmm(x)));
  const std::vector<int> rows = {0, 7, 150, 3};
  EXPECT_TRUE(BitwiseEqual(plain.SpmmRows(rows, x),
                           compressed.SpmmRows(rows, x)));
}

TEST(ReorderDynTest, SnapshotBoundariesAndAddNodeStability) {
  const Graph graph = TestGraph(60, 15);
  const Graph reordered = ReorderGraph(graph, ReorderStrategy::kRcm, 15);
  auto snap_or = dyn::GraphSnapshot::FromGraph(reordered);
  ASSERT_TRUE(snap_or.ok());
  const dyn::GraphSnapshot& snap = snap_or.value();
  ASSERT_NE(snap.permutation(), nullptr);
  EXPECT_EQ(snap.ToExternal(snap.ToInternal(17)), 17);

  // AddNode: the new node's external id is the old num_nodes(), stable
  // across the identity tail AND across a later re-reorder.
  const int n = snap.num_nodes();
  std::vector<double> feat(static_cast<size_t>(snap.feature_dim()), 0.5);
  feat[0] = 7.25;
  std::vector<dyn::Mutation> batch;
  batch.push_back(dyn::Mutation::AddNode(feat, 1));
  batch.push_back(dyn::Mutation::AddEdge(n, 5));  // wire it in, external ids
  auto next_or = snap.Apply(batch);
  ASSERT_TRUE(next_or.ok());
  const dyn::GraphSnapshot& next = next_or.value().first;
  EXPECT_EQ(next.num_nodes(), n + 1);
  EXPECT_EQ(next.ToInternal(n), n);  // identity tail before any re-reorder
  EXPECT_EQ(next.FeatureRow(next.ToInternal(n))[0], 7.25);
  EXPECT_TRUE(next.HasEdge(n, 5));

  const dyn::ReorderResult res = next.Reordered(ReorderStrategy::kRcm, 15);
  const dyn::GraphSnapshot& relabeled = res.snapshot;
  EXPECT_EQ(relabeled.version(), next.version() + 1);
  ASSERT_EQ(static_cast<int>(res.remap.size()), n + 1);
  // Same logical node behind the same external id after the re-reorder.
  EXPECT_EQ(relabeled.FeatureRow(relabeled.ToInternal(n))[0], 7.25);
  EXPECT_TRUE(relabeled.HasEdge(n, 5));
  for (int e = 0; e <= n; ++e) {
    EXPECT_EQ(relabeled.ToInternal(e),
              res.remap[next.ToInternal(e)]);
  }
}

// Dynamic stream conformance: a reordered stream with compaction-triggered
// mid-stream re-reorders must stay bitwise identical to a cold rebuild.
TEST(ReorderDynTest, StreamConformanceThroughCompactionReorder) {
  const Graph graph = TestGraph(80, 23);
  const Graph reordered = ReorderGraph(graph, ReorderStrategy::kRcm, 23);
  const serve::ServableModel model = MakeServable(graph, ModelFamily::kGcn);
  dyn::StreamOptions options;
  options.reorder = ReorderStrategy::kRcm;
  options.reorder_seed = 23;
  auto server_or = dyn::StreamingServer::Create(reordered, model, options);
  ASSERT_TRUE(server_or.ok());
  dyn::StreamingServer& server = *server_or.value();

  Rng rng(77);
  int batches = 0;
  for (int round = 0; round < 6; ++round) {
    // Dense enough batches that the 25% overlay threshold trips and the
    // re-reorder path runs mid-stream.
    int submitted = 0;
    while (submitted < 25) {
      const auto snap = server.snapshot();
      const int u = static_cast<int>(rng.UniformInt(snap->num_nodes()));
      const int v = static_cast<int>(rng.UniformInt(snap->num_nodes()));
      if (u == v) continue;
      if (snap->HasEdge(u, v)) {
        server.Submit(dyn::Mutation::RemoveEdge(u, v));
      } else {
        server.Submit(dyn::Mutation::AddEdge(u, v));
      }
      ++submitted;
    }
    if (round == 2) {  // grow the graph mid-stream too
      std::vector<double> feat(
          static_cast<size_t>(server.snapshot()->feature_dim()), 0.125);
      server.Submit(dyn::Mutation::AddNode(feat, 0));
    }
    auto stats = server.ApplyPending();
    ASSERT_TRUE(stats.ok());
    ++batches;
  }
  // Every compaction bumps the version a second time (Apply + Reordered),
  // so with these batch sizes the version must have outrun the batch count.
  EXPECT_GT(static_cast<int>(server.version()), batches);
  ASSERT_NE(server.snapshot()->permutation(), nullptr);

  // Oracle: cold engine on the materialized graph, external row order.
  const Graph rebuilt = server.snapshot()->MaterializeGraph();
  serve::InferenceEngine cold(&rebuilt, serve::EngineOptions{});
  std::vector<int> nodes;
  for (int i = 0; i < rebuilt.num_nodes(); ++i) nodes.push_back(i);
  auto streamed = server.PredictNodes(nodes);
  auto statically = cold.PredictNodes(model, nodes);
  ASSERT_TRUE(streamed.ok() && statically.ok());
  EXPECT_TRUE(BitwiseEqual(streamed.value(), statically.value()));
}

}  // namespace
}  // namespace ahg
