// Finite-difference verification of the graph-structured autodiff ops.
#include "autodiff/graph_ops.h"
#include "autodiff/ops.h"
#include "gtest/gtest.h"
#include "testing/gradcheck.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ahg {
namespace {

using ::ahg::testing::ExpectGradientsMatch;

Matrix RandomMatrix(int r, int c, uint64_t seed) {
  Rng rng(seed);
  return Matrix::Gaussian(r, c, 1.0, &rng);
}

// Small adjacency with self loops, an empty row (node 4 has no incoming
// entries), and weighted edges.
SparseMatrix TestAdjacency() {
  return SparseMatrix::FromCoo(5, 5,
                               {{0, 0, 1.0},
                                {0, 1, 0.5},
                                {1, 1, 1.0},
                                {1, 2, 2.0},
                                {2, 2, 1.0},
                                {2, 0, 1.5},
                                {3, 3, 1.0},
                                {3, 0, 0.7},
                                {3, 2, 0.3}});
}

TEST(GraphOpsForwardTest, SpmmMatchesSparseKernel) {
  SparseMatrix a = TestAdjacency();
  Matrix x = RandomMatrix(5, 3, 1);
  Var xv = MakeConstant(x);
  EXPECT_TRUE(AllClose(Spmm(a, xv)->value, a.Spmm(x), 1e-12));
}

TEST(GraphOpsGradTest, Spmm) {
  SparseMatrix a = TestAdjacency();
  Var x = MakeParam(RandomMatrix(5, 3, 2));
  ExpectGradientsMatch(
      [&] {
        Var y = Spmm(a, x);
        return SumAll(CWiseMul(y, y));
      },
      {x});
}

TEST(GraphOpsGradTest, SpmmParallelBackwardMatchesFiniteDifferences) {
  // The SpMM backward (A^T * grad via the cached transpose) runs
  // row-parallel; with the min-grain forced to 1 and 4 workers the
  // finite-difference check proves the parallel backward does not perturb
  // gradients. A larger random matrix gives every worker real rows.
  ScopedMinParallelWork min_work(1);
  ScopedNumThreads threads(4);
  Rng rng(11);
  std::vector<CooEntry> entries;
  for (int i = 0; i < 80; ++i) {
    entries.push_back({static_cast<int>(rng.UniformInt(24)),
                       static_cast<int>(rng.UniformInt(24)), rng.Normal()});
  }
  SparseMatrix a = SparseMatrix::FromCoo(24, 24, std::move(entries));
  Var x = MakeParam(RandomMatrix(24, 3, 12));
  ExpectGradientsMatch(
      [&] {
        Var y = Spmm(a, x);
        return SumAll(CWiseMul(y, y));
      },
      {x});
}

TEST(GraphOpsGradTest, SpmmGradientsBitwiseIdenticalAcrossThreadCounts) {
  // Stronger than gradcheck: backward at 4 threads must equal backward at 1
  // thread bit for bit.
  ScopedMinParallelWork min_work(1);
  SparseMatrix a = TestAdjacency();
  Matrix init = RandomMatrix(5, 3, 13);
  Matrix grads[2];
  const int counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    ScopedNumThreads threads(counts[i]);
    Var x = MakeParam(init);
    Var y = Spmm(a, x);
    Backward(SumAll(CWiseMul(y, y)));
    grads[i] = x->grad;
  }
  ASSERT_EQ(grads[0].size(), grads[1].size());
  for (int64_t i = 0; i < grads[0].size(); ++i) {
    EXPECT_EQ(grads[0].data()[i], grads[1].data()[i]) << "entry " << i;
  }
}

TEST(GraphOpsForwardTest, NeighborMaxPoolEmptyRowIsZero) {
  SparseMatrix a = TestAdjacency();
  Var x = MakeConstant(Matrix::Constant(5, 2, 3.0));
  Var y = NeighborMaxPool(a, x);
  EXPECT_EQ(y->value(4, 0), 0.0);  // node 4 has no entries
  EXPECT_EQ(y->value(0, 0), 3.0);
}

TEST(GraphOpsGradTest, NeighborMaxPool) {
  SparseMatrix a = TestAdjacency();
  // Spread values so argmaxes are strict.
  Matrix init(5, 3);
  Rng rng(3);
  for (int64_t i = 0; i < init.size(); ++i) {
    init.data()[i] = rng.Normal() * 3.0 + static_cast<double>(i % 7);
  }
  Var x = MakeParam(init);
  ExpectGradientsMatch(
      [&] {
        Var y = NeighborMaxPool(a, x);
        return SumAll(CWiseMul(y, y));
      },
      {x});
}

TEST(GraphOpsForwardTest, GatAggregateRowsAreConvexCombinations) {
  SparseMatrix a = TestAdjacency();
  Rng rng(4);
  Var s_src = MakeConstant(Matrix::Gaussian(5, 1, 1.0, &rng));
  Var s_dst = MakeConstant(Matrix::Gaussian(5, 1, 1.0, &rng));
  Var h = MakeConstant(Matrix::Constant(5, 2, 2.0));
  Var y = GatAggregate(a, s_src, s_dst, h, 0.2);
  // Convex combination of constant rows stays at the constant.
  for (int r = 0; r < 4; ++r) EXPECT_NEAR(y->value(r, 0), 2.0, 1e-9);
  EXPECT_EQ(y->value(4, 0), 0.0);  // empty row
}

TEST(GraphOpsGradTest, GatAggregateAllInputs) {
  SparseMatrix a = TestAdjacency();
  Var s_src = MakeParam(RandomMatrix(5, 1, 5));
  Var s_dst = MakeParam(RandomMatrix(5, 1, 6));
  Var h = MakeParam(RandomMatrix(5, 3, 7));
  ExpectGradientsMatch(
      [&] {
        Var y = GatAggregate(a, s_src, s_dst, h, 0.2);
        return SumAll(CWiseMul(y, y));
      },
      {s_src, s_dst, h}, 1e-6, 5e-5);
}

TEST(GraphOpsForwardTest, SegmentPoolSumAndMean) {
  Var x = MakeConstant(Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}}));
  const std::vector<int> segments{0, 0, 1};
  Var sum = SegmentPool(x, segments, 2, /*mean=*/false);
  EXPECT_EQ(sum->value(0, 0), 4.0);
  EXPECT_EQ(sum->value(0, 1), 6.0);
  EXPECT_EQ(sum->value(1, 0), 5.0);
  Var mean = SegmentPool(x, segments, 2, /*mean=*/true);
  EXPECT_EQ(mean->value(0, 0), 2.0);
  EXPECT_EQ(mean->value(1, 1), 6.0);
}

TEST(GraphOpsGradTest, SegmentPoolSum) {
  Var x = MakeParam(RandomMatrix(6, 2, 8));
  const std::vector<int> segments{0, 1, 0, 2, 1, 2};
  ExpectGradientsMatch(
      [&] {
        Var y = SegmentPool(x, segments, 3, /*mean=*/false);
        return SumAll(CWiseMul(y, y));
      },
      {x});
}

TEST(GraphOpsGradTest, SegmentPoolMean) {
  Var x = MakeParam(RandomMatrix(6, 2, 9));
  const std::vector<int> segments{0, 1, 0, 2, 1, 2};
  ExpectGradientsMatch(
      [&] {
        Var y = SegmentPool(x, segments, 3, /*mean=*/true);
        return SumAll(CWiseMul(y, y));
      },
      {x});
}

}  // namespace
}  // namespace ahg
