// Property-style suites: randomized-composition gradient checks over the
// autodiff engine, structural invariants of generated graphs and their
// normalizations, and algebraic identities of the metrics — each swept via
// parameterized gtest over seeds/configurations.
#include <cmath>

#include "autodiff/graph_ops.h"
#include "autodiff/ops.h"
#include "graph/synthetic.h"
#include "gtest/gtest.h"
#include "metrics/kendall.h"
#include "metrics/wilcoxon.h"
#include "testing/gradcheck.h"
#include "util/rng.h"

namespace ahg {
namespace {

using ::ahg::testing::ExpectGradientsMatch;

// ---------------------------------------------------------------------------
// Randomized composition grad checks: build a random smooth expression DAG
// from two parameters and verify gradients numerically.
class RandomDagGradTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagGradTest, CompositionMatchesFiniteDifferences) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng build_rng(seed);
  Rng init_rng(seed ^ 0xffULL);
  Var a = MakeParam(Matrix::Gaussian(3, 3, 0.5, &init_rng));
  Var b = MakeParam(Matrix::Gaussian(3, 3, 0.5, &init_rng));
  // Pre-sample the op sequence so every forward pass is identical.
  std::vector<int> ops;
  for (int i = 0; i < 6; ++i) {
    ops.push_back(static_cast<int>(build_rng.UniformInt(6)));
  }
  auto make_loss = [&] {
    Var x = a;
    Var y = b;
    for (int op : ops) {
      switch (op) {
        case 0:
          x = Tanh(Add(x, y));
          break;
        case 1:
          x = Sigmoid(MatMul(x, y));
          break;
        case 2:
          y = CWiseMul(Sub(y, x), y);
          break;
        case 3:
          x = RowSoftmaxOp(x);
          break;
        case 4:
          y = ScalarMul(Add(y, x), 0.5);
          break;
        default:
          x = Elu(Sub(x, ScalarMul(y, 0.3)));
          break;
      }
    }
    return SumAll(CWiseMul(x, Tanh(y)));
  };
  ExpectGradientsMatch(make_loss, {a, b}, 1e-6, 2e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagGradTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Graph invariants across randomized generator configurations.
struct GraphCase {
  uint64_t seed;
  double homophily;
  double power_law;
  bool directed;
  bool weighted;
};

class GraphInvariantTest : public ::testing::TestWithParam<GraphCase> {};

TEST_P(GraphInvariantTest, NormalizationInvariants) {
  const GraphCase& tc = GetParam();
  SyntheticConfig cfg;
  cfg.num_nodes = 160;
  cfg.num_classes = 4;
  cfg.feature_dim = 6;
  cfg.avg_degree = 4.0;
  cfg.homophily = tc.homophily;
  cfg.power_law = tc.power_law;
  cfg.directed = tc.directed;
  cfg.weighted = tc.weighted;
  cfg.seed = tc.seed;
  Graph g = GenerateSbmGraph(cfg);

  // Row-normalized adjacency: every row sums to ~1 (self loop guarantees a
  // nonzero row).
  {
    const SparseMatrix& adj = g.Adjacency(AdjacencyKind::kRowNorm);
    std::vector<double> sums = adj.RowSums();
    for (double s : sums) EXPECT_NEAR(s, 1.0, 1e-9);
  }
  // Symmetric normalization is symmetric and has bounded spectral radius:
  // |lambda| <= 1 implies the Rayleigh quotient of any vector is <= 1.
  {
    const SparseMatrix& adj = g.Adjacency(AdjacencyKind::kSymNorm);
    Matrix dense = adj.ToDense();
    for (int i = 0; i < g.num_nodes(); i += 7) {
      for (int j = 0; j < g.num_nodes(); j += 11) {
        EXPECT_NEAR(dense(i, j), dense(j, i), 1e-12);
      }
    }
    Rng rng(tc.seed ^ 0x11ULL);
    Matrix v = Matrix::Gaussian(g.num_nodes(), 1, 1.0, &rng);
    Matrix av = adj.Spmm(v);
    EXPECT_LE(av.SquaredNorm(), v.SquaredNorm() * (1.0 + 1e-9));
  }
  // No NaNs anywhere in features.
  for (int64_t i = 0; i < g.features().size(); ++i) {
    EXPECT_FALSE(std::isnan(g.features().data()[i]));
  }
  // Labels in range.
  for (int label : g.labels()) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, cfg.num_classes);
  }
}

TEST_P(GraphInvariantTest, SpmmGradientOnRealAdjacency) {
  const GraphCase& tc = GetParam();
  SyntheticConfig cfg;
  cfg.num_nodes = 24;
  cfg.num_classes = 3;
  cfg.feature_dim = 4;
  cfg.avg_degree = 3.0;
  cfg.directed = tc.directed;
  cfg.weighted = tc.weighted;
  cfg.seed = tc.seed;
  Graph g = GenerateSbmGraph(cfg);
  Rng rng(tc.seed);
  Var x = MakeParam(Matrix::Gaussian(g.num_nodes(), 3, 1.0, &rng));
  const SparseMatrix& adj = g.Adjacency(AdjacencyKind::kSymNorm);
  ExpectGradientsMatch(
      [&] {
        Var y = Spmm(adj, x);
        return SumAll(CWiseMul(y, y));
      },
      {x});
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GraphInvariantTest,
    ::testing::Values(GraphCase{1, 0.8, 0.0, false, false},
                      GraphCase{2, 0.3, 0.0, false, true},
                      GraphCase{3, 0.9, 0.7, false, false},
                      GraphCase{4, 0.6, 0.0, true, true},
                      GraphCase{5, 0.5, 0.5, true, false}));

// ---------------------------------------------------------------------------
// Metric identities.
TEST(MetricPropertyTest, SoftmaxShiftInvariance) {
  Rng rng(9);
  Matrix x = Matrix::Gaussian(4, 5, 1.0, &rng);
  Matrix shifted = x;
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.cols(); ++c) shifted(r, c) += 123.456;
  }
  EXPECT_TRUE(AllClose(RowSoftmax(x), RowSoftmax(shifted), 1e-9));
}

TEST(MetricPropertyTest, KendallSelfCorrelationIsOne) {
  Rng rng(10);
  std::vector<double> x(20);
  for (auto& v : x) v = rng.Normal();
  EXPECT_NEAR(KendallTau(x, x), 1.0, 1e-12);
  std::vector<double> neg;
  for (double v : x) neg.push_back(-v);
  EXPECT_NEAR(KendallTau(x, neg), -1.0, 1e-12);
}

TEST(MetricPropertyTest, KendallInvariantToMonotoneTransform) {
  Rng rng(11);
  std::vector<double> x(15), y(15);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = rng.Normal();
  }
  std::vector<double> x_exp;
  for (double v : x) x_exp.push_back(std::exp(v));
  EXPECT_NEAR(KendallTau(x, y), KendallTau(x_exp, y), 1e-12);
}

TEST(MetricPropertyTest, WilcoxonSymmetricInArguments) {
  Rng rng(12);
  std::vector<double> a(10), b(10);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Normal();
    b[i] = rng.Normal();
  }
  EXPECT_NEAR(WilcoxonSignedRankTest(a, b), WilcoxonSignedRankTest(b, a),
              1e-12);
}

TEST(MetricPropertyTest, WilcoxonPValueInUnitInterval) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 3 + static_cast<int>(rng.UniformInt(20));
    std::vector<double> a(n), b(n);
    for (int i = 0; i < n; ++i) {
      a[i] = rng.Normal();
      b[i] = rng.Normal();
    }
    const double p = WilcoxonSignedRankTest(a, b);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Autodiff invariants under graph ops.
TEST(AutodiffPropertyTest, SpmmLinearity) {
  SparseMatrix a = SparseMatrix::FromCoo(
      3, 3, {{0, 1, 2.0}, {1, 2, -1.0}, {2, 0, 0.5}});
  Rng rng(14);
  Var x = MakeConstant(Matrix::Gaussian(3, 2, 1.0, &rng));
  Var y = MakeConstant(Matrix::Gaussian(3, 2, 1.0, &rng));
  Var lhs = Spmm(a, Add(x, y));
  Var rhs = Add(Spmm(a, x), Spmm(a, y));
  EXPECT_TRUE(AllClose(lhs->value, rhs->value, 1e-12));
}

TEST(AutodiffPropertyTest, MeanOfIdenticalVarsIsIdentity) {
  Rng rng(15);
  Var x = MakeConstant(Matrix::Gaussian(3, 3, 1.0, &rng));
  Var mean = MeanOfVars({x, x, x});
  EXPECT_TRUE(AllClose(mean->value, x->value, 1e-12));
}

TEST(AutodiffPropertyTest, SoftmaxWeightedSumIsConvex) {
  // Output entries lie within the min/max of the inputs entrywise.
  Rng rng(16);
  Var t1 = MakeConstant(Matrix::Gaussian(2, 2, 1.0, &rng));
  Var t2 = MakeConstant(Matrix::Gaussian(2, 2, 1.0, &rng));
  Var alpha = MakeParam(Matrix::Gaussian(1, 2, 2.0, &rng));
  Var out = SoftmaxWeightedSum({t1, t2}, alpha);
  for (int64_t i = 0; i < out->value.size(); ++i) {
    const double lo = std::min(t1->value.data()[i], t2->value.data()[i]);
    const double hi = std::max(t1->value.data()[i], t2->value.data()[i]);
    EXPECT_GE(out->value.data()[i], lo - 1e-12);
    EXPECT_LE(out->value.data()[i], hi + 1e-12);
  }
}

}  // namespace
}  // namespace ahg
