// Full-protocol integration test: generate -> publish (AutoGraph on-disk
// format) -> read back blind -> run AutoHEnsGNN under a time budget ->
// write predictions -> score against withheld labels. This is the complete
// competition loop the system was built for, end to end through the public
// API only.
#include <fstream>

#include "core/autohens.h"
#include "graph/split.h"
#include "graph/synthetic.h"
#include "gtest/gtest.h"
#include "io/autograph_format.h"
#include "metrics/classification_report.h"
#include "models/model_zoo.h"

namespace ahg {
namespace {

TEST(IntegrationTest, CompetitionProtocolEndToEnd) {
  // --- server: publish a small dataset, keep test labels back ------------
  SyntheticConfig gen;
  gen.num_nodes = 300;
  gen.num_classes = 3;
  gen.feature_dim = 12;
  gen.avg_degree = 4.0;
  gen.homophily = 0.88;
  gen.feature_signal = 0.8;
  gen.seed = 11;
  Graph truth = GenerateSbmGraph(gen);
  Rng rng(12);
  DataSplit official = RandomSplit(truth, 0.5, 0.0, &rng);
  const std::string dir = "/tmp/ahg_integration_dataset";
  ASSERT_TRUE(WriteAutographDataset(dir, truth, official.train,
                                    official.test, 60.0)
                  .ok());

  // --- participant: blind read, train, predict ---------------------------
  auto dataset = ReadAutographDataset(dir);
  ASSERT_TRUE(dataset.ok());
  const AutographDataset& ds = dataset.value();
  // Withheld labels really are invisible.
  for (int node : ds.test_nodes) EXPECT_EQ(ds.graph.labels()[node], -1);

  Rng part_rng(13);
  DataSplit split = RandomSplit(ds.graph, 0.75, 0.25, &part_rng);
  split.test.clear();

  AutoHEnsConfig config;
  config.pool_size = 2;
  config.k = 2;
  config.algo = SearchAlgo::kAdaptive;
  config.proxy.dataset_ratio = 0.5;
  config.proxy.bagging = 1;
  config.proxy.train.max_epochs = 15;
  config.train.max_epochs = 30;
  config.train.patience = 8;
  config.train.learning_rate = 2e-2;
  config.adaptive.train = config.train;
  config.bagging_splits = 2;
  config.time_budget_seconds = ds.time_budget_seconds;
  config.seed = 14;
  std::vector<CandidateSpec> candidates{FindCandidate("GCN"),
                                        FindCandidate("TAGC"),
                                        FindCandidate("SGC")};
  AutoHEnsResult result =
      RunAutoHEnsGnn(ds.graph, split, candidates, config);
  EXPECT_EQ(result.pool_names.size(), 2u);

  // --- server: score submissions against withheld labels -----------------
  std::vector<int> predictions(truth.num_nodes(), -1);
  for (int node : ds.test_nodes) {
    predictions[node] = result.probs.ArgMaxRow(node);
  }
  int correct = 0;
  for (int node : official.test) {
    ASSERT_GE(predictions[node], 0);
    correct += predictions[node] == truth.labels()[node];
  }
  const double accuracy =
      static_cast<double>(correct) / official.test.size();
  EXPECT_GT(accuracy, 0.7) << "competition-protocol accuracy too low";

  // Diagnostics render without crashing and agree on accuracy.
  ClassificationReport report = BuildClassificationReport(
      result.probs, truth.labels(), official.test, truth.num_classes());
  EXPECT_NEAR(report.accuracy, accuracy, 1e-12);
  EXPECT_FALSE(FormatClassificationReport(report).empty());
}

}  // namespace
}  // namespace ahg
