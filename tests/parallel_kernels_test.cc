// Determinism guarantee of the row-parallel numeric kernels: for every
// thread count the parallel Spmm / SpmmTransposed / dense matmul /
// row-softmax outputs must be bitwise identical to the sequential
// reference, because each output row (or fixed reduction chunk) is owned by
// exactly one worker and accumulated in a fixed order.
//
// The min-grain threshold is dropped to 1 so even test-sized matrices take
// the threaded path; thread counts beyond the core count simply
// oversubscribe, which the guarantee must also survive.
#include <cstring>

#include "gtest/gtest.h"
#include "tensor/matrix.h"
#include "tensor/sparse_matrix.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ahg {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 7};

// Bitwise comparison (not AllClose): determinism, not approximation.
void ExpectBitwiseEqual(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  if (a.size() == 0) return;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
}

// Sequential reference with the same per-row accumulation order as the
// parallel kernel.
Matrix ReferenceSpmm(const SparseMatrix& a, const Matrix& x) {
  Matrix y(a.rows(), x.cols());
  for (int r = 0; r < a.rows(); ++r) {
    double* yrow = y.Row(r);
    for (int64_t i = a.row_ptr()[r]; i < a.row_ptr()[r + 1]; ++i) {
      const double v = a.values()[i];
      const double* xrow = x.Row(a.col_idx()[i]);
      for (int c = 0; c < x.cols(); ++c) yrow[c] += v * xrow[c];
    }
  }
  return y;
}

// The pre-refactor scatter form of A^T * X; the cached-transpose kernel
// must reproduce it bitwise (same per-output-row summation order).
Matrix ReferenceSpmmTransposed(const SparseMatrix& a, const Matrix& x) {
  Matrix y(a.cols(), x.cols());
  for (int r = 0; r < a.rows(); ++r) {
    const double* xrow = x.Row(r);
    for (int64_t i = a.row_ptr()[r]; i < a.row_ptr()[r + 1]; ++i) {
      const double v = a.values()[i];
      double* yrow = y.Row(a.col_idx()[i]);
      for (int c = 0; c < x.cols(); ++c) yrow[c] += v * xrow[c];
    }
  }
  return y;
}

// A CSR matrix exercising the partitioning edge cases: empty rows, one
// fully dense row, skewed row lengths, and many more rows than workers.
SparseMatrix PathologicalSparse(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  std::vector<CooEntry> entries;
  for (int c = 0; c < cols; ++c) entries.push_back({1, c, rng.Normal()});
  for (int i = 0; i < rows * 4; ++i) {
    int r = static_cast<int>(rng.UniformInt(rows));
    if (r % 5 == 0) continue;  // rows divisible by 5 stay empty
    entries.push_back({r, static_cast<int>(rng.UniformInt(cols)),
                       rng.Normal()});
  }
  return SparseMatrix::FromCoo(rows, cols, std::move(entries));
}

class ParallelKernelsTest : public ::testing::Test {
 protected:
  // Force the threaded path regardless of problem size.
  ScopedMinParallelWork min_work_{1};
};

TEST_F(ParallelKernelsTest, SpmmBitwiseAcrossThreadCounts) {
  // Rows >> threads (257 rows vs at most 7 workers).
  SparseMatrix a = PathologicalSparse(257, 133, 21);
  Rng rng(22);
  Matrix x = Matrix::Gaussian(133, 9, 1.0, &rng);
  const Matrix reference = ReferenceSpmm(a, x);
  for (int t : kThreadCounts) {
    ScopedNumThreads threads(t);
    ExpectBitwiseEqual(a.Spmm(x), reference);
  }
}

TEST_F(ParallelKernelsTest, SpmmTransposedBitwiseAcrossThreadCounts) {
  SparseMatrix a = PathologicalSparse(181, 97, 23);
  Rng rng(24);
  Matrix x = Matrix::Gaussian(181, 6, 1.0, &rng);
  const Matrix reference = ReferenceSpmmTransposed(a, x);
  for (int t : kThreadCounts) {
    ScopedNumThreads threads(t);
    ExpectBitwiseEqual(a.SpmmTransposed(x), reference);
  }
}

TEST_F(ParallelKernelsTest, SpmmEmptyAndDenseRows) {
  // 3 rows: empty, dense, single entry — fewer rows than workers.
  std::vector<CooEntry> entries;
  Rng rng(25);
  for (int c = 0; c < 40; ++c) entries.push_back({1, c, rng.Normal()});
  entries.push_back({2, 7, 3.5});
  SparseMatrix a = SparseMatrix::FromCoo(3, 40, std::move(entries));
  Matrix x = Matrix::Gaussian(40, 5, 1.0, &rng);
  const Matrix reference = ReferenceSpmm(a, x);
  for (int t : kThreadCounts) {
    ScopedNumThreads threads(t);
    Matrix y = a.Spmm(x);
    ExpectBitwiseEqual(y, reference);
    for (int c = 0; c < 5; ++c) EXPECT_EQ(y(0, c), 0.0);  // empty row
  }
}

TEST_F(ParallelKernelsTest, MatMulBitwiseAcrossThreadCounts) {
  Rng rng(26);
  Matrix a = Matrix::Gaussian(211, 33, 1.0, &rng);
  Matrix b = Matrix::Gaussian(33, 17, 1.0, &rng);
  // Reference computed at 1 thread; row ownership makes it the sequential
  // i-k-j result.
  Matrix reference;
  {
    ScopedNumThreads threads(1);
    reference = MatMul(a, b);
  }
  for (int t : kThreadCounts) {
    ScopedNumThreads threads(t);
    ExpectBitwiseEqual(MatMul(a, b), reference);
  }
}

TEST_F(ParallelKernelsTest, MatMulTransABitwiseAcrossThreadCounts) {
  // Reduction-dimension chunking must be a pure function of the shape, so
  // results match bitwise across thread counts even though the summation is
  // regrouped relative to a flat loop. Use > 2048 rows to span multiple
  // reduction chunks.
  Rng rng(27);
  Matrix a = Matrix::Gaussian(5000, 13, 1.0, &rng);
  Matrix b = Matrix::Gaussian(5000, 11, 1.0, &rng);
  Matrix reference;
  {
    ScopedNumThreads threads(1);
    reference = MatMulTransA(a, b);
  }
  EXPECT_TRUE(AllClose(reference, MatMul(Transpose(a), b), 1e-9));
  for (int t : kThreadCounts) {
    ScopedNumThreads threads(t);
    ExpectBitwiseEqual(MatMulTransA(a, b), reference);
  }
}

TEST_F(ParallelKernelsTest, MatMulTransBBitwiseAcrossThreadCounts) {
  Rng rng(28);
  Matrix a = Matrix::Gaussian(143, 21, 1.0, &rng);
  Matrix b = Matrix::Gaussian(37, 21, 1.0, &rng);
  Matrix reference;
  {
    ScopedNumThreads threads(1);
    reference = MatMulTransB(a, b);
  }
  for (int t : kThreadCounts) {
    ScopedNumThreads threads(t);
    ExpectBitwiseEqual(MatMulTransB(a, b), reference);
  }
}

TEST_F(ParallelKernelsTest, RowSoftmaxBitwiseAcrossThreadCounts) {
  Rng rng(29);
  Matrix a = Matrix::Gaussian(301, 12, 3.0, &rng);
  Matrix softmax_ref, log_softmax_ref;
  {
    ScopedNumThreads threads(1);
    softmax_ref = RowSoftmax(a);
    log_softmax_ref = RowLogSoftmax(a);
  }
  for (int t : kThreadCounts) {
    ScopedNumThreads threads(t);
    ExpectBitwiseEqual(RowSoftmax(a), softmax_ref);
    ExpectBitwiseEqual(RowLogSoftmax(a), log_softmax_ref);
  }
}

TEST_F(ParallelKernelsTest, TransposedCachedMatchesExplicitTranspose) {
  SparseMatrix a = PathologicalSparse(61, 44, 30);
  const SparseMatrix& cached = a.TransposedCached();
  EXPECT_TRUE(AllClose(cached.ToDense(), a.Transposed().ToDense(), 0.0));
  // Same object on repeated calls.
  EXPECT_EQ(&cached, &a.TransposedCached());
  // Mutating values invalidates the cache.
  (*a.mutable_values())[0] += 1.0;
  const SparseMatrix& rebuilt = a.TransposedCached();
  EXPECT_TRUE(AllClose(rebuilt.ToDense(), a.Transposed().ToDense(), 0.0));
}

TEST_F(ParallelKernelsTest, SpmmConcurrentCallersShareCachedTranspose) {
  // Many threads driving SpmmTransposed on the same matrix concurrently —
  // the lazy cache build must be race-free (also exercised under TSan in CI).
  SparseMatrix a = PathologicalSparse(97, 83, 31);
  Rng rng(32);
  Matrix x = Matrix::Gaussian(97, 4, 1.0, &rng);
  const Matrix reference = ReferenceSpmmTransposed(a, x);
  ParallelFor(8, 4, [&](int) {
    Matrix y = a.SpmmTransposed(x);
    ASSERT_EQ(std::memcmp(y.data(), reference.data(),
                          y.size() * sizeof(double)),
              0);
  });
}

}  // namespace
}  // namespace ahg
