// Edge cases and failure injection: degenerate graphs, single-element
// ensembles, precondition violations (death tests), and boundary
// configurations that production use will eventually hit.
#include "autodiff/ops.h"
#include "core/autohens.h"
#include "core/gse.h"
#include "core/search_adaptive.h"
#include "ensemble/baselines.h"
#include "graph/synthetic.h"
#include "gtest/gtest.h"
#include "metrics/metrics.h"
#include "tasks/train_node.h"

namespace ahg {
namespace {

TEST(EdgeCaseTest, EdgelessGraphStillTrains) {
  // Only self loops: GCN degenerates to an MLP but must not crash.
  Rng feature_rng(1);
  Matrix features = Matrix::Gaussian(40, 6, 1.0, &feature_rng);
  std::vector<int> labels(40);
  for (int i = 0; i < 40; ++i) labels[i] = i % 2;
  Graph g = Graph::Create(40, {}, false, std::move(features),
                          std::move(labels), 2);
  Rng rng(2);
  DataSplit split = RandomSplit(g, 0.5, 0.25, &rng);
  ModelConfig mcfg;
  mcfg.family = ModelFamily::kGcn;
  mcfg.hidden_dim = 8;
  mcfg.num_layers = 2;
  mcfg.dropout = 0.0;
  TrainConfig tcfg;
  tcfg.max_epochs = 10;
  NodeTrainResult result = TrainSingleNodeModel(mcfg, g, split, tcfg);
  EXPECT_EQ(result.probs.rows(), 40);
}

TEST(EdgeCaseTest, SingleClassMajorityLabels) {
  // Highly imbalanced labels: argmax accuracy still computes.
  Matrix probs = Matrix::FromRows({{0.9, 0.1}, {0.8, 0.2}, {0.7, 0.3}});
  EXPECT_NEAR(Accuracy(probs, {0, 0, 0}, {0, 1, 2}), 1.0, 1e-12);
}

TEST(EdgeCaseTest, GseWithKOne) {
  SyntheticConfig cfg;
  cfg.num_nodes = 50;
  cfg.num_classes = 2;
  cfg.feature_dim = 4;
  cfg.seed = 3;
  Graph g = GenerateSbmGraph(cfg);
  ModelConfig mcfg;
  mcfg.family = ModelFamily::kGcn;
  mcfg.hidden_dim = 6;
  mcfg.num_layers = 2;
  mcfg.dropout = 0.0;
  GraphSelfEnsemble gse(mcfg, /*k=*/1, g.feature_dim(), 2, 1, true);
  GnnContext ctx{&g, false, nullptr};
  Var probs = gse.Probs(ctx, MakeConstant(g.features()));
  EXPECT_EQ(probs->rows(), 50);
  EXPECT_EQ(gse.SelectedLayers().size(), 1u);
}

TEST(EdgeCaseTest, AdaptiveBetaSingleModelIsOne) {
  std::vector<double> beta = AdaptiveBeta({0.5}, 3.0, 3, 8000, 5);
  ASSERT_EQ(beta.size(), 1u);
  EXPECT_NEAR(beta[0], 1.0, 1e-12);
}

TEST(EdgeCaseTest, EnsembleOfOneModelIsIdentity) {
  Matrix p = Matrix::FromRows({{0.2, 0.8}});
  EXPECT_TRUE(AllClose(AverageProbs({p}), p, 1e-12));
  EXPECT_TRUE(AllClose(WeightedProbs({p}, {1.0}), p, 1e-12));
}

TEST(EdgeCaseTest, SoftmaxWeightedSumSingleTerm) {
  Var t = MakeConstant(Matrix::FromRows({{1.0, 2.0}}));
  Var alpha = MakeParam(Matrix(1, 1));
  Var out = SoftmaxWeightedSum({t}, alpha);
  EXPECT_TRUE(AllClose(out->value, t->value, 1e-12));
}

TEST(EdgeCaseTest, GreedySelectWithSingleModel) {
  Matrix p = Matrix::FromRows({{0.9, 0.1}, {0.2, 0.8}});
  std::vector<int> selected = GreedyEnsembleSelect({p}, {0, 1}, {0, 1});
  EXPECT_EQ(selected, (std::vector<int>{0}));
}

TEST(EdgeCaseTest, DropoutProbabilityZeroIsIdentityInTraining) {
  Rng rng(4);
  Var x = MakeParam(Matrix::FromRows({{1.0, 2.0}}));
  Var y = Dropout(x, 0.0, /*training=*/true, &rng);
  EXPECT_EQ(y.get(), x.get());
}

// --- failure injection (death tests) --------------------------------------

TEST(DeathTest, MatMulShapeMismatchAborts) {
  Matrix a(2, 3), b(4, 2);
  EXPECT_DEATH(MatMul(a, b), "CHECK failed");
}

TEST(DeathTest, MatrixOutOfBoundsAborts) {
  Matrix a(2, 2);
  EXPECT_DEATH(a(2, 0), "CHECK failed");
}

TEST(DeathTest, FromCooOutOfRangeAborts) {
  EXPECT_DEATH(SparseMatrix::FromCoo(2, 2, {{5, 0, 1.0}}), "CHECK failed");
}

TEST(DeathTest, RestoreShapeMismatchAborts) {
  ParameterStore store;
  store.Create(Matrix(2, 2));
  std::vector<Matrix> wrong{Matrix(3, 3)};
  EXPECT_DEATH(store.Restore(wrong), "CHECK failed");
}

TEST(DeathTest, GseFixedLayerOutOfRangeAborts) {
  ModelConfig mcfg;
  mcfg.family = ModelFamily::kGcn;
  mcfg.hidden_dim = 4;
  mcfg.num_layers = 2;
  GraphSelfEnsemble gse(mcfg, 2, 4, 2, 1, false);
  EXPECT_DEATH(gse.SetFixedLayers({1, 5}), "CHECK failed");
}

TEST(DeathTest, GraphEdgeEndpointOutOfRangeAborts) {
  EXPECT_DEATH(Graph::Create(2, {{0, 7, 1.0}}, false,
                             Matrix::Constant(2, 1, 1.0), {0, 1}, 2),
               "CHECK failed");
}

TEST(DeathTest, ConcatColsRowMismatchAborts) {
  Var a = MakeConstant(Matrix(2, 2));
  Var b = MakeConstant(Matrix(3, 2));
  EXPECT_DEATH(ConcatCols({a, b}), "CHECK failed");
}

}  // namespace
}  // namespace ahg
