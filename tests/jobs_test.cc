// Tests of the AutoML job service (src/jobs): store round-trips, the
// SIGKILL-at-every-checkpoint resume-determinism property for all three
// search algorithms, queue lifecycle, budget degradation, the publish ->
// registry handshake, and the served-task (link / graph) job variants.
//
// The kill tests fork: the child runs the job with fault injection armed
// (JobEnv::kill_after_checkpoints = 1), dies by SIGKILL right after its
// next successful checkpoint rename, and the parent recovers + resumes
// until the job publishes. The final ensemble directory must be
// byte-for-byte identical to an uninterrupted run's.
#include <sys/wait.h>
#include <unistd.h>

#include <dirent.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/synthetic.h"
#include "gtest/gtest.h"
#include "jobs/job_queue.h"
#include "jobs/search_job.h"
#include "jobs/served_tasks.h"
#include "serve/model_registry.h"
#include "util/thread_pool.h"

namespace ahg::jobs {
namespace {

const Graph& JobGraph() {
  static const Graph* graph = [] {
    SyntheticConfig cfg;
    cfg.num_nodes = 60;
    cfg.num_classes = 3;
    cfg.feature_dim = 6;
    cfg.avg_degree = 4.0;
    cfg.homophily = 0.85;
    cfg.feature_signal = 1.0;
    cfg.seed = 31;
    return new Graph(GenerateSbmGraph(cfg));
  }();
  return *graph;
}

const DataSplit& JobSplit() {
  static const DataSplit* split = [] {
    Rng rng(32);
    return new DataSplit(RandomSplit(JobGraph(), 0.6, 0.2, &rng));
  }();
  return *split;
}

ModelConfig TinyConfig(ModelFamily family) {
  ModelConfig cfg;
  cfg.family = family;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  cfg.dropout = 0.1;
  return cfg;
}

std::vector<CandidateSpec> JobCandidates() {
  return {{"GCN", TinyConfig(ModelFamily::kGcn)},
          {"SGC", TinyConfig(ModelFamily::kSgc)},
          {"SAGE", TinyConfig(ModelFamily::kSageMean)}};
}

SearchJobSpec MakeSpec(const std::string& job_id, JobAlgo algo) {
  SearchJobSpec spec;
  spec.job_id = job_id;
  spec.dataset = "sbm60";
  spec.algo = algo;
  spec.candidates = JobCandidates();
  spec.pool_size = 2;
  spec.k = 1;
  spec.proxy_dataset_ratio = 0.6;
  spec.proxy_bagging = 1;
  spec.proxy_num_threads = 1;
  spec.train.max_epochs = 6;
  spec.train.patience = 6;
  spec.train.learning_rate = 2e-2;
  spec.gradient_max_epochs = 6;
  spec.gradient_patience = 6;
  spec.gradient_checkpoint_every = 2;
  spec.seed = 77;
  return spec;
}

JobEnv MakeEnv() {
  JobEnv env;
  env.graph = &JobGraph();
  env.split = &JobSplit();
  return env;
}

std::string FreshRoot(const std::string& name) {
  const std::string root = ::testing::TempDir() + "jobs_test_" + name;
  std::filesystem::remove_all(root);  // stale state from a previous run
  return root;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> ListDirFiles(const std::string& dir) {
  std::vector<std::string> files;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return files;
  while (dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    files.push_back(name);
  }
  closedir(d);
  std::sort(files.begin(), files.end());
  return files;
}

// The memcmp at the heart of the resume-determinism claim: same file set,
// identical bytes in every file.
void ExpectDirsIdentical(const std::string& a, const std::string& b) {
  const std::vector<std::string> fa = ListDirFiles(a);
  const std::vector<std::string> fb = ListDirFiles(b);
  ASSERT_FALSE(fa.empty()) << a << " is empty";
  ASSERT_EQ(fa, fb);
  for (const std::string& name : fa) {
    const std::string bytes_a = ReadBytes(a + "/" + name);
    const std::string bytes_b = ReadBytes(b + "/" + name);
    ASSERT_FALSE(bytes_a.empty()) << name;
    ASSERT_EQ(bytes_a.size(), bytes_b.size()) << name;
    EXPECT_EQ(std::memcmp(bytes_a.data(), bytes_b.data(), bytes_a.size()), 0)
        << name << " differs between " << a << " and " << b;
  }
}

// Drives `job_id` to kPublished, forking a worker for every attempt and
// SIGKILLing it after its first successful checkpoint write. Returns the
// number of attempts (>= 2 means at least one kill actually landed).
int RunSearchJobWithKills(const JobStore& store, const std::string& job_id,
                          const JobEnv& base_env) {
  int attempts = 0;
  while (true) {
    auto state = store.LoadState(job_id);
    EXPECT_TRUE(state.ok());
    if (!state.ok() || state.value().status == JobStatus::kPublished) {
      return attempts;
    }
    EXPECT_LT(attempts, 64) << "job never published";
    if (attempts >= 64) return attempts;
    const pid_t pid = fork();
    EXPECT_GE(pid, 0);
    if (pid == 0) {
      // Child: single-threaded (fork-safe) worker that dies mid-run.
      SetNumThreads(1);
      JobEnv env = base_env;
      env.kill_after_checkpoints = 1;
      SearchJob job(&store, job_id);
      auto out = job.Run(env);
      _exit(out.ok() ? 0 : 17);
    }
    int wstatus = 0;
    waitpid(pid, &wstatus, 0);
    ++attempts;
    if (WIFSIGNALED(wstatus)) {
      EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);
      auto recovered = store.RecoverInterrupted();
      EXPECT_TRUE(recovered.ok());
    } else {
      EXPECT_TRUE(WIFEXITED(wstatus));
      EXPECT_EQ(WEXITSTATUS(wstatus), 0);
    }
  }
}

// Same driver for served-task jobs.
int RunTaskJobWithKills(const JobStore& store, const std::string& job_id,
                        const TaskEnv& base_env) {
  int attempts = 0;
  while (true) {
    auto state = store.LoadState(job_id);
    EXPECT_TRUE(state.ok());
    if (!state.ok() || state.value().status == JobStatus::kPublished) {
      return attempts;
    }
    EXPECT_LT(attempts, 64) << "task job never published";
    if (attempts >= 64) return attempts;
    const pid_t pid = fork();
    EXPECT_GE(pid, 0);
    if (pid == 0) {
      SetNumThreads(1);
      TaskEnv env = base_env;
      env.kill_after_checkpoints = 1;
      TaskJob job(&store, job_id);
      auto out = job.Run(env);
      _exit(out.ok() ? 0 : 17);
    }
    int wstatus = 0;
    waitpid(pid, &wstatus, 0);
    ++attempts;
    if (WIFSIGNALED(wstatus)) {
      EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);
      auto recovered = store.RecoverInterrupted();
      EXPECT_TRUE(recovered.ok());
    } else {
      EXPECT_TRUE(WIFEXITED(wstatus));
      EXPECT_EQ(WEXITSTATUS(wstatus), 0);
    }
  }
}

// --- JobStore ------------------------------------------------------------

TEST(JobStoreTest, SpecRoundTripPreservesEveryField) {
  JobStore store(FreshRoot("spec_rt"));
  SearchJobSpec spec = MakeSpec("rt", JobAlgo::kAdaptive);
  spec.proxy_model_ratio = 0.625;
  spec.adaptive_lambda = 4.75;
  spec.time_budget_seconds = 12.5;
  spec.publish_version = 9;
  ASSERT_TRUE(store.CreateJob(spec).ok());
  auto loaded = store.LoadJobSpec("rt");
  ASSERT_TRUE(loaded.ok());
  const SearchJobSpec& got = loaded.value();
  EXPECT_EQ(got.job_id, "rt");
  EXPECT_EQ(got.dataset, "sbm60");
  EXPECT_EQ(got.algo, JobAlgo::kAdaptive);
  ASSERT_EQ(got.candidates.size(), 3u);
  EXPECT_EQ(got.candidates[0].name, "GCN");
  EXPECT_EQ(got.candidates[2].config.family, ModelFamily::kSageMean);
  EXPECT_EQ(got.candidates[1].config.hidden_dim, 8);
  EXPECT_EQ(got.pool_size, 2);
  EXPECT_EQ(got.k, 1);
  // Doubles must round-trip exactly (binary, not text).
  EXPECT_EQ(got.proxy_model_ratio, 0.625);
  EXPECT_EQ(got.adaptive_lambda, 4.75);
  EXPECT_EQ(got.time_budget_seconds, 12.5);
  EXPECT_EQ(got.train.learning_rate, 2e-2);
  EXPECT_EQ(got.gradient_checkpoint_every, 2);
  EXPECT_EQ(got.seed, 77u);
  EXPECT_EQ(got.publish_version, 9);
}

TEST(JobStoreTest, CheckpointRoundTripIsBitwise) {
  JobStore store(FreshRoot("ckpt_rt"));
  ASSERT_TRUE(store.CreateJob(MakeSpec("rt", JobAlgo::kGradient)).ok());

  SearchJobCheckpoint ckpt;
  CandidateScore score;
  score.name = "GCN";
  score.config = TinyConfig(ModelFamily::kGcn);
  score.original_config = TinyConfig(ModelFamily::kGcn);
  score.mean_val_accuracy = 1.0 / 3.0;  // not representable in decimal
  score.stddev = 0.1;
  ckpt.proxy_scores[0] = score;
  ckpt.pool_done = true;
  ckpt.pool = {JobCandidates()[0]};
  ckpt.adaptive_probes[{0, 2}] = 2.0 / 7.0;
  Matrix member(2, 3);
  for (int64_t i = 0; i < member.size(); ++i) {
    member.data()[i] = 1.0 / static_cast<double>(i + 7);
  }
  ckpt.member_params[1] = {member};
  ckpt.layers = {{1, 2}};
  ckpt.beta = {1.0};
  ASSERT_TRUE(store.SaveJobCheckpoint("rt", ckpt).ok());
  ASSERT_TRUE(store.HasCheckpoint("rt"));

  auto loaded = store.LoadJobCheckpoint("rt");
  ASSERT_TRUE(loaded.ok());
  const SearchJobCheckpoint& got = loaded.value();
  ASSERT_EQ(got.proxy_scores.size(), 1u);
  EXPECT_EQ(got.proxy_scores.at(0).name, "GCN");
  EXPECT_EQ(got.proxy_scores.at(0).mean_val_accuracy, 1.0 / 3.0);
  EXPECT_TRUE(got.pool_done);
  ASSERT_EQ(got.pool.size(), 1u);
  EXPECT_EQ(got.adaptive_probes.at({0, 2}), 2.0 / 7.0);
  ASSERT_EQ(got.member_params.at(1).size(), 1u);
  const Matrix& got_member = got.member_params.at(1)[0];
  ASSERT_EQ(got_member.rows(), 2);
  ASSERT_EQ(got_member.cols(), 3);
  EXPECT_EQ(std::memcmp(got_member.data(), member.data(),
                        sizeof(double) * member.size()),
            0);
  EXPECT_EQ(got.layers, ckpt.layers);
  EXPECT_FALSE(got.train_done);
}

TEST(JobStoreTest, GradientStateRoundTripIsBitwise) {
  // Capture a real mid-search snapshot and push it through the store.
  JobStore store(FreshRoot("grad_rt"));
  ASSERT_TRUE(store.CreateJob(MakeSpec("rt", JobAlgo::kGradient)).ok());
  GradientSearchConfig gcfg;
  gcfg.k = 1;
  gcfg.max_epochs = 3;
  gcfg.patience = 3;
  gcfg.train = MakeSpec("x", JobAlgo::kGradient).train;
  gcfg.seed = 5;
  gcfg.checkpoint_every = 2;
  GradientSearchState snap;
  bool have_snap = false;
  gcfg.on_checkpoint = [&](const GradientSearchState& st) {
    snap = st;
    have_snap = true;
  };
  SearchGradient({JobCandidates()[0]}, JobGraph(), JobSplit(), gcfg);
  ASSERT_TRUE(have_snap);

  SearchJobCheckpoint ckpt;
  ckpt.has_gradient_state = true;
  ckpt.gradient_state = snap;
  ASSERT_TRUE(store.SaveJobCheckpoint("rt", ckpt).ok());
  auto loaded = store.LoadJobCheckpoint("rt");
  ASSERT_TRUE(loaded.ok());
  const GradientSearchState& got = loaded.value().gradient_state;
  ASSERT_TRUE(loaded.value().has_gradient_state);
  EXPECT_EQ(got.epoch, snap.epoch);
  EXPECT_EQ(got.best_val, snap.best_val);
  EXPECT_EQ(got.epochs_since_best, snap.epochs_since_best);
  ASSERT_EQ(got.weight_values.size(), snap.weight_values.size());
  for (size_t i = 0; i < snap.weight_values.size(); ++i) {
    const Matrix& a = snap.weight_values[i];
    const Matrix& b = got.weight_values[i];
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), sizeof(double) * a.size()), 0);
  }
  ASSERT_EQ(got.weight_opt.m.size(), snap.weight_opt.m.size());
  EXPECT_EQ(got.weight_opt.step, snap.weight_opt.step);
  EXPECT_EQ(got.weight_opt.learning_rate, snap.weight_opt.learning_rate);
  for (size_t i = 0; i < snap.weight_opt.m.size(); ++i) {
    const Matrix& a = snap.weight_opt.m[i];
    const Matrix& b = got.weight_opt.m[i];
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), sizeof(double) * a.size()), 0);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(got.dropout_rng.s[i], snap.dropout_rng.s[i]);
  }
  EXPECT_EQ(got.dropout_rng.has_spare_normal, snap.dropout_rng.has_spare_normal);
  EXPECT_EQ(got.dropout_rng.spare_normal, snap.dropout_rng.spare_normal);
}

TEST(JobStoreTest, RejectsBadJobIds) {
  JobStore store(FreshRoot("bad_ids"));
  EXPECT_FALSE(store.CreateJob(MakeSpec("", JobAlgo::kGradient)).ok());
  EXPECT_FALSE(store.CreateJob(MakeSpec("a/b", JobAlgo::kGradient)).ok());
  EXPECT_FALSE(store.CreateJob(MakeSpec("..", JobAlgo::kGradient)).ok());
}

TEST(JobStoreTest, DuplicateCreateFails) {
  JobStore store(FreshRoot("dup"));
  ASSERT_TRUE(store.CreateJob(MakeSpec("j", JobAlgo::kGradient)).ok());
  EXPECT_FALSE(store.CreateJob(MakeSpec("j", JobAlgo::kAdaptive)).ok());
  EXPECT_EQ(store.ListJobs(), (std::vector<std::string>{"j"}));
}

TEST(JobStoreTest, StateRoundTripAndRecovery) {
  JobStore store(FreshRoot("state"));
  ASSERT_TRUE(store.CreateJob(MakeSpec("dead", JobAlgo::kGradient)).ok());
  ASSERT_TRUE(store.CreateJob(MakeSpec("fine", JobAlgo::kGradient)).ok());
  JobState running;
  running.status = JobStatus::kRunning;
  running.attempts = 2;
  running.checkpoints_written = 5;
  running.message = "mid\tflight";  // tabs must be sanitized
  ASSERT_TRUE(store.SaveState("dead", running).ok());

  auto got = store.LoadState("dead");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().status, JobStatus::kRunning);
  EXPECT_EQ(got.value().attempts, 2);
  EXPECT_EQ(got.value().checkpoints_written, 5);
  EXPECT_EQ(got.value().message, "mid flight");

  auto recovered = store.RecoverInterrupted();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), (std::vector<std::string>{"dead"}));
  EXPECT_EQ(store.LoadState("dead").value().status, JobStatus::kCheckpointed);
  EXPECT_EQ(store.LoadState("fine").value().status, JobStatus::kQueued);
}

// --- SearchJob -----------------------------------------------------------

TEST(SearchJobTest, HierarchicalRunPublishes) {
  JobStore store(FreshRoot("hier_run"));
  SearchJobSpec spec = MakeSpec("h", JobAlgo::kHierarchical);
  ASSERT_TRUE(store.CreateJob(spec).ok());
  SearchJob job(&store, "h");
  auto out = job.Run(MakeEnv());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().status, JobStatus::kPublished);
  EXPECT_FALSE(out.value().resumed);
  // 3 candidates, pool 2: proxy ranking runs, then uniform beta.
  ASSERT_EQ(out.value().beta.size(), 2u);
  EXPECT_EQ(out.value().beta[0], 0.5);
  EXPECT_EQ(out.value().beta[1], 0.5);
  ASSERT_EQ(out.value().layers.size(), 2u);
  EXPECT_EQ(out.value().layers[0], (std::vector<int>{1}));  // k=1, cyclic
  EXPECT_GT(out.value().ensemble_val_accuracy, 0.3);
  EXPECT_GT(out.value().checkpoints_written, 0);
  EXPECT_EQ(store.LoadState("h").value().status, JobStatus::kPublished);
  // Terminal jobs refuse another run.
  EXPECT_FALSE(job.Run(MakeEnv()).ok());
}

TEST(SearchJobTest, CancelPausesThenResumeCompletes) {
  JobStore store(FreshRoot("cancel_resume"));
  ASSERT_TRUE(store.CreateJob(MakeSpec("c", JobAlgo::kHierarchical)).ok());
  CancelToken cancel;
  cancel.Cancel();
  JobEnv env = MakeEnv();
  env.cancel = &cancel;
  SearchJob job(&store, "c");
  auto paused = job.Run(env);
  ASSERT_TRUE(paused.ok());
  EXPECT_EQ(paused.value().status, JobStatus::kCheckpointed);
  EXPECT_EQ(store.LoadState("c").value().status, JobStatus::kCheckpointed);

  auto done = job.Run(MakeEnv());
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_EQ(done.value().status, JobStatus::kPublished);
}

TEST(SearchJobTest, BudgetShedsDeterministically) {
  JobStore store(FreshRoot("budget"));
  SearchJobSpec spec = MakeSpec("b", JobAlgo::kGradient);
  spec.time_budget_seconds = 1e-9;  // exceeded before the first stage
  ASSERT_TRUE(store.CreateJob(spec).ok());
  SearchJob job(&store, "b");
  auto out = job.Run(MakeEnv());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().status, JobStatus::kPublished);
  // Proxy shed keeps the first N candidates as listed; search shed falls
  // back to the hierarchical baseline (uniform beta, cyclic depths).
  EXPECT_EQ(out.value().pool_names,
            (std::vector<std::string>{"GCN", "SGC"}));
  ASSERT_EQ(out.value().beta.size(), 2u);
  EXPECT_EQ(out.value().beta[0], 0.5);
}

TEST(SearchJobTest, PublishRollsIntoRegistry) {
  JobStore store(FreshRoot("publish"));
  SearchJobSpec spec = MakeSpec("p", JobAlgo::kHierarchical);
  spec.publish_version = 4;
  ASSERT_TRUE(store.CreateJob(spec).ok());
  const std::string registry_dir = FreshRoot("publish_registry");
  serve::ModelRegistry registry(registry_dir);
  JobEnv env = MakeEnv();
  env.registry_dir = registry_dir;
  env.registry = &registry;
  SearchJob job(&store, "p");
  auto out = job.Run(env);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().published_version, 4);
  // The job refreshed the registry itself: the version is already live.
  EXPECT_EQ(registry.active_version(), 4);
  ASSERT_NE(registry.Active(), nullptr);
  EXPECT_TRUE(registry.ValidateCompatibility(JobGraph()).ok());
  EXPECT_EQ(store.LoadState("p").value().published_version, 4);
}

struct AlgoName {
  template <typename T>
  std::string operator()(const T& info) const {
    return JobAlgoName(info.param);
  }
};

class KillResumeTest : public ::testing::TestWithParam<JobAlgo> {};

TEST_P(KillResumeTest, ResumedEnsembleIsBitwiseIdentical) {
  const JobAlgo algo = GetParam();
  const std::string tag = JobAlgoName(algo);
  JobStore store(FreshRoot("kill_" + tag));

  // Uninterrupted baseline.
  SearchJobSpec base = MakeSpec("base", algo);
  ASSERT_TRUE(store.CreateJob(base).ok());
  SetNumThreads(1);  // match the forked workers' kernel schedule
  SearchJob base_job(&store, "base");
  auto base_out = base_job.Run(MakeEnv());
  ASSERT_TRUE(base_out.ok()) << base_out.status().ToString();
  ASSERT_EQ(base_out.value().status, JobStatus::kPublished);

  // Same spec under a different id, killed after every checkpoint write.
  SearchJobSpec killed = MakeSpec("killed", algo);
  ASSERT_TRUE(store.CreateJob(killed).ok());
  const int attempts = RunSearchJobWithKills(store, "killed", MakeEnv());
  // Every checkpoint boundary got its own kill: at least as many attempts
  // as the baseline wrote checkpoints (plus the final clean attempt).
  EXPECT_GT(attempts, base_out.value().checkpoints_written);
  EXPECT_EQ(store.LoadState("killed").value().status, JobStatus::kPublished);
  EXPECT_GT(store.LoadState("killed").value().attempts, 1);

  ExpectDirsIdentical(store.EnsembleDir("base"), store.EnsembleDir("killed"));
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, KillResumeTest,
                         ::testing::Values(JobAlgo::kHierarchical,
                                           JobAlgo::kAdaptive,
                                           JobAlgo::kGradient),
                         AlgoName());

// --- JobQueue ------------------------------------------------------------

TEST(JobQueueTest, SubmitRunsToPublished) {
  JobStore store(FreshRoot("queue_run"));
  JobQueue queue(&store, MakeEnv());
  ASSERT_TRUE(queue.Submit(MakeSpec("q1", JobAlgo::kHierarchical)).ok());
  queue.WaitIdle();
  auto out = queue.Outcome("q1");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().status, JobStatus::kPublished);
  EXPECT_FALSE(queue.Outcome("missing").ok());
}

TEST(JobQueueTest, CancelQueuedJobIsTerminal) {
  JobStore store(FreshRoot("queue_cancel"));
  JobQueue queue(&store, MakeEnv());
  // The first job occupies the worker; the second waits in the queue.
  ASSERT_TRUE(queue.Submit(MakeSpec("busy", JobAlgo::kGradient)).ok());
  ASSERT_TRUE(queue.Submit(MakeSpec("doomed", JobAlgo::kHierarchical)).ok());
  ASSERT_TRUE(queue.Cancel("doomed").ok());
  queue.WaitIdle();
  EXPECT_EQ(store.LoadState("doomed").value().status, JobStatus::kCancelled);
  EXPECT_EQ(store.LoadState("busy").value().status, JobStatus::kPublished);
  // Terminal jobs cannot be re-enqueued.
  EXPECT_FALSE(queue.Resume("doomed").ok());
}

TEST(JobQueueTest, RecoverAndResumeFinishesDeadWorkerJob) {
  JobStore store(FreshRoot("queue_recover"));
  ASSERT_TRUE(store.CreateJob(MakeSpec("orphan", JobAlgo::kHierarchical)).ok());
  // Simulate a worker that died mid-run: state stuck at kRunning.
  JobState stuck;
  stuck.status = JobStatus::kRunning;
  stuck.attempts = 1;
  ASSERT_TRUE(store.SaveState("orphan", stuck).ok());

  JobQueue queue(&store, MakeEnv());
  auto resumed = queue.RecoverAndResume();
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed.value(), (std::vector<std::string>{"orphan"}));
  queue.WaitIdle();
  EXPECT_EQ(store.LoadState("orphan").value().status, JobStatus::kPublished);
}

// --- Served-task jobs (Tables VIII / IX) ---------------------------------

TaskJobSpec MakeLinkSpec(const std::string& job_id) {
  TaskJobSpec spec;
  spec.job_id = job_id;
  spec.dataset = "sbm60-links";
  spec.kind = TaskKind::kLinkPrediction;
  spec.candidates = {{"GCN", TinyConfig(ModelFamily::kGcn)},
                     {"SGC", TinyConfig(ModelFamily::kSgc)}};
  spec.train.max_epochs = 6;
  spec.train.patience = 6;
  spec.train.learning_rate = 2e-2;
  spec.seed = 91;
  return spec;
}

TEST(TaskJobTest, LinkWinnerSurvivesKillsBitwise) {
  JobStore store(FreshRoot("task_link"));
  static const LinkSplit* link = [] {
    Rng rng(41);
    return new LinkSplit(MakeLinkSplit(JobGraph(), 0.1, 0.15, &rng));
  }();
  TaskEnv env;
  env.link = link;

  ASSERT_TRUE(store.CreateTaskJob(MakeLinkSpec("base")).ok());
  SetNumThreads(1);
  TaskJob base_job(&store, "base");
  auto base_out = base_job.Run(env);
  ASSERT_TRUE(base_out.ok()) << base_out.status().ToString();
  EXPECT_EQ(base_out.value().status, JobStatus::kPublished);
  EXPECT_GE(base_out.value().best_index, 0);
  EXPECT_GT(base_out.value().best_metric, 0.5);

  ASSERT_TRUE(store.CreateTaskJob(MakeLinkSpec("killed")).ok());
  const int attempts = RunTaskJobWithKills(store, "killed", env);
  EXPECT_GT(attempts, 1);
  const std::string base_bytes = ReadBytes(store.WinnerPath("base"));
  const std::string killed_bytes = ReadBytes(store.WinnerPath("killed"));
  ASSERT_FALSE(base_bytes.empty());
  ASSERT_EQ(base_bytes.size(), killed_bytes.size());
  EXPECT_EQ(std::memcmp(base_bytes.data(), killed_bytes.data(),
                        base_bytes.size()),
            0);

  // The winner serves: pair scores are probabilities.
  auto scorer = LinkScorer::Load(store.WinnerPath("killed"));
  ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
  std::vector<NodePair> pairs = {{0, 1}, {2, 3}, {4, 5}};
  std::vector<double> scores =
      scorer.value().Score(link->train_graph, pairs);
  ASSERT_EQ(scores.size(), pairs.size());
  for (double p : scores) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(TaskJobTest, GraphWinnerSurvivesKillsBitwise) {
  JobStore store(FreshRoot("task_graph"));
  static const GraphSet* set = [] {
    ProteinsLikeConfig pcfg;
    pcfg.num_graphs = 24;
    pcfg.seed = 43;
    return new GraphSet(GenerateProteinsLike(pcfg));
  }();
  static const GraphSetSplit* split = [] {
    Rng rng(44);
    return new GraphSetSplit(RandomGraphSetSplit(*set, 0.6, 0.2, &rng));
  }();
  TaskEnv env;
  env.graph_set = set;
  env.graph_split = split;

  TaskJobSpec spec = MakeLinkSpec("base");
  spec.dataset = "proteins24";
  spec.kind = TaskKind::kGraphClassification;
  spec.candidates = {{"GIN", TinyConfig(ModelFamily::kGin)},
                     {"GCN", TinyConfig(ModelFamily::kGcn)}};
  ASSERT_TRUE(store.CreateTaskJob(spec).ok());
  SetNumThreads(1);
  TaskJob base_job(&store, "base");
  auto base_out = base_job.Run(env);
  ASSERT_TRUE(base_out.ok()) << base_out.status().ToString();
  EXPECT_EQ(base_out.value().status, JobStatus::kPublished);

  spec.job_id = "killed";
  ASSERT_TRUE(store.CreateTaskJob(spec).ok());
  const int attempts = RunTaskJobWithKills(store, "killed", env);
  EXPECT_GT(attempts, 1);
  const std::string base_bytes = ReadBytes(store.WinnerPath("base"));
  const std::string killed_bytes = ReadBytes(store.WinnerPath("killed"));
  ASSERT_FALSE(base_bytes.empty());
  ASSERT_EQ(base_bytes.size(), killed_bytes.size());
  EXPECT_EQ(std::memcmp(base_bytes.data(), killed_bytes.data(),
                        base_bytes.size()),
            0);

  auto scorer = GraphSetScorer::Load(store.WinnerPath("killed"),
                                     set->num_classes);
  ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
  const Matrix probs = scorer.value().PredictProba(*set);
  ASSERT_EQ(probs.rows(), static_cast<int>(set->graphs.size()));
  ASSERT_EQ(probs.cols(), set->num_classes);
  for (int r = 0; r < probs.rows(); ++r) {
    double total = 0.0;
    for (int c = 0; c < probs.cols(); ++c) {
      EXPECT_GE(probs(r, c), 0.0);
      total += probs(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace ahg::jobs
