// Partitioned execution plane suite (ISSUE 9 tentpole proof). Covers:
//  - partitioner determinism: same (graph, num_parts, seed) produces a
//    byte-identical PartitionPlan across repeated runs and kernel thread
//    counts, and a different seed changes the assignment;
//  - partition quality invariants: every part non-empty, balance within
//    the configured epsilon (plus the rounding slack of FillEmptyParts),
//    cut fraction in [0, 1];
//  - edge cases: P=1 identity plan with a no-exchange fast path, P > n
//    rejected with InvalidArgument, P greater than the number of
//    connected components, a star graph where every edge is cut;
//  - bitwise conformance: PartitionedEngine answers memcmp-identical to a
//    lone InferenceEngine over six synthetic families x {kGcn, kSgc} x
//    P in {1,2,4} x kernel threads in {1,4};
//  - dynamic conformance: after streamed mutation batches ApplyDelta keeps
//    every warmed version bitwise equal to a cold engine on the
//    materialized snapshot graph;
//  - fabric integration: ServePartitioned serves bitwise like the
//    replicated mode, survives a mid-traffic Rollout, routes mutations
//    through the plan, and rejects unsupported model families.
// The suite runs under TSan and ASan in CI.
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "dyn/mutation.h"
#include "dyn/snapshot.h"
#include "fabric/fabric.h"
#include "graph/synthetic.h"
#include "gtest/gtest.h"
#include "nn/linear.h"
#include "partition/halo_exchange.h"
#include "partition/partitioned_engine.h"
#include "partition/partitioner.h"
#include "partition/plan.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "util/thread_pool.h"

namespace ahg::partition {
namespace {

Graph Sbm(uint64_t seed, int num_nodes, int feature_dim = 6,
          double avg_degree = 4.0) {
  SyntheticConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.num_classes = 3;
  cfg.feature_dim = feature_dim;
  cfg.avg_degree = avg_degree;
  cfg.seed = seed;
  return GenerateSbmGraph(cfg);
}

serve::ServableModel MakeServable(const Graph& graph, int version,
                                  ModelFamily family, uint64_t seed) {
  serve::ServableModel model;
  model.version = version;
  model.num_classes = graph.num_classes();
  model.config.family = family;
  model.config.in_dim = graph.feature_dim();
  model.config.hidden_dim = 8;
  model.config.num_layers = 2;
  model.config.seed = seed;
  std::unique_ptr<GnnModel> zoo = BuildModel(model.config);
  Rng head_rng(model.config.seed ^ 0x5ca1ab1eULL);
  Linear head(zoo->params(), model.config.hidden_dim, model.num_classes,
              /*bias=*/true, &head_rng);
  model.params = zoo->params()->Snapshot();
  return model;
}

bool MatricesBitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(double)) == 0;
}

std::vector<int> AllNodes(int n) {
  std::vector<int> nodes(n);
  std::iota(nodes.begin(), nodes.end(), 0);
  return nodes;
}

// --- Partitioner -----------------------------------------------------------

TEST(PartitionerTest, DeterministicAcrossRunsAndThreadCounts) {
  Graph graph = Sbm(7, 600);
  PartitionerOptions options;
  options.seed = 42;
  std::string reference;
  for (int threads : {1, 4}) {
    ScopedNumThreads scoped(threads);
    for (int run = 0; run < 2; ++run) {
      auto plan = PartitionPlan::Build(graph, 4, options);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      const std::string serialized = plan.value().Serialize();
      if (reference.empty()) {
        reference = serialized;
      } else {
        EXPECT_EQ(serialized, reference)
            << "plan bytes differ (threads " << threads << " run " << run
            << ")";
      }
    }
  }
  // A different seed must be able to produce a different assignment.
  PartitionerOptions other;
  other.seed = 43;
  auto replan = PartitionPlan::Build(graph, 4, other);
  ASSERT_TRUE(replan.ok());
  EXPECT_NE(replan.value().Serialize(), reference);
}

TEST(PartitionerTest, PartsAreNonEmptyBalancedAndCutFractionSane) {
  Graph graph = Sbm(11, 800);
  for (int parts : {2, 3, 4, 7}) {
    PartitionMetrics metrics;
    auto assignment = PartitionGraph(graph, parts, PartitionerOptions{},
                                     &metrics);
    ASSERT_TRUE(assignment.ok()) << assignment.status().ToString();
    std::vector<int> count(parts, 0);
    for (int p : assignment.value()) {
      ASSERT_GE(p, 0);
      ASSERT_LT(p, parts);
      ++count[p];
    }
    for (int p = 0; p < parts; ++p) {
      EXPECT_GT(count[p], 0) << "part " << p << " of " << parts << " empty";
    }
    EXPECT_GE(metrics.edge_cut_fraction, 0.0);
    EXPECT_LE(metrics.edge_cut_fraction, 1.0);
    EXPECT_GE(metrics.balance_factor, 1.0);
    // balance_factor = P * max_part / n; refinement caps parts at
    // (1 + eps) * ceil(n/P), FillEmptyParts can nudge one past it.
    EXPECT_LE(metrics.balance_factor, 1.0 + 0.1 + 0.05)
        << "parts " << parts;
  }
}

TEST(PartitionerTest, InvalidPartCountsAreRejected) {
  Graph graph = Sbm(13, 24);
  EXPECT_EQ(PartitionGraph(graph, 0, {}).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(PartitionGraph(graph, -2, {}).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(PartitionGraph(graph, 25, {}).status().code(),
            Status::Code::kInvalidArgument);
  // P == n is legal: one node per part.
  auto exact = PartitionGraph(graph, 24, {});
  ASSERT_TRUE(exact.ok());
  std::vector<int> count(24, 0);
  for (int p : exact.value()) ++count[p];
  for (int p = 0; p < 24; ++p) EXPECT_EQ(count[p], 1);
}

TEST(PartitionerTest, MorePartsThanConnectedComponents) {
  // Three disjoint communities, split four ways: the partitioner must not
  // crash or leave a part empty even though no 4-way component split
  // exists.
  SyntheticConfig cfg;
  cfg.num_nodes = 90;
  cfg.num_classes = 3;
  cfg.feature_dim = 4;
  cfg.avg_degree = 4.0;
  cfg.seed = 17;
  cfg.homophily = 1.0;  // all edges intra-class: classes stay disconnected
  Graph graph = GenerateSbmGraph(cfg);
  auto plan = PartitionPlan::Build(graph, 4, PartitionerOptions{});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  for (int p = 0; p < 4; ++p) {
    EXPECT_GT(plan.value().parts[p].num_owned(), 0) << "part " << p;
  }
}

TEST(PartitionPlanTest, SinglePartIsIdentityWithNoHalo) {
  Graph graph = Sbm(19, 120);
  auto plan = PartitionPlan::Build(graph, 1, PartitionerOptions{});
  ASSERT_TRUE(plan.ok());
  const PartitionPlan& p = plan.value();
  EXPECT_EQ(p.num_parts, 1);
  EXPECT_EQ(p.halo_nodes_total, 0);
  EXPECT_EQ(p.metrics.cut_edges, 0);
  EXPECT_EQ(p.parts[0].num_owned(), graph.num_nodes());
  EXPECT_EQ(p.parts[0].num_halo(), 0);
  for (int g = 0; g < graph.num_nodes(); ++g) {
    EXPECT_EQ(p.part_of[g], 0);
    EXPECT_EQ(p.parts[0].locals[g], g);  // identity local numbering
  }
}

TEST(PartitionPlanTest, StarGraphCutsEveryEdge) {
  // K_{1,12}: center 0, leaves 1..12. Center alone on part 0, leaves round
  // robin on parts 1..3: every edge crosses parts.
  std::vector<Edge> edges;
  for (int leaf = 1; leaf <= 12; ++leaf) {
    edges.push_back({0, leaf, 1.0});
  }
  Matrix features(13, 3);
  for (int r = 0; r < 13; ++r) {
    for (int c = 0; c < 3; ++c) features(r, c) = 0.1 * r + c;
  }
  Graph graph = Graph::Create(13, std::move(edges), /*directed=*/false,
                              std::move(features), {}, 2);
  std::vector<int> part_of(13);
  part_of[0] = 0;
  for (int leaf = 1; leaf <= 12; ++leaf) part_of[leaf] = 1 + (leaf - 1) % 3;
  auto plan = PartitionPlan::BuildFromAssignment(graph, part_of, 4);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value().metrics.cut_edges, 12);
  EXPECT_DOUBLE_EQ(plan.value().metrics.edge_cut_fraction, 1.0);
  // Part 0 owns the center and needs every leaf as halo; leaf parts need
  // the center.
  EXPECT_EQ(plan.value().parts[0].num_halo(), 12);
  for (int p = 1; p < 4; ++p) {
    EXPECT_EQ(plan.value().parts[p].num_halo(), 1);
    EXPECT_EQ(plan.value().parts[p].halo_globals[0], 0);
  }

  // All-cut is the worst case for the exchange; conformance must hold.
  serve::ServableModel model =
      MakeServable(graph, 1, ModelFamily::kGcn, 23);
  serve::InferenceEngine reference(&graph, serve::EngineOptions{});
  auto expected = reference.PredictAll(model);
  ASSERT_TRUE(expected.ok());
  auto engine =
      PartitionedEngine::CreateFromPlan(graph, std::move(plan).value());
  ASSERT_TRUE(engine.ok());
  auto got = engine.value()->PredictNodes(model, AllNodes(13));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(MatricesBitwiseEqual(got.value(), expected.value()));
}

TEST(PartitionPlanTest, BuildFromAssignmentValidatesInput) {
  Graph graph = Sbm(29, 30);
  EXPECT_EQ(PartitionPlan::BuildFromAssignment(graph, std::vector<int>(29, 0), 2)
                .status()
                .code(),
            Status::Code::kInvalidArgument);
  std::vector<int> out_of_range(30, 0);
  out_of_range[4] = 2;
  EXPECT_EQ(PartitionPlan::BuildFromAssignment(graph, out_of_range, 2)
                .status()
                .code(),
            Status::Code::kInvalidArgument);
  // An empty part is permitted for externally supplied assignments.
  auto lopsided =
      PartitionPlan::BuildFromAssignment(graph, std::vector<int>(30, 1), 2);
  ASSERT_TRUE(lopsided.ok());
  EXPECT_EQ(lopsided.value().parts[0].num_owned(), 0);
  EXPECT_EQ(lopsided.value().parts[1].num_owned(), 30);
}

// --- Bitwise conformance ---------------------------------------------------

TEST(PartitionConformanceTest, BitwiseIdenticalToLoneEngine) {
  struct Family {
    uint64_t graph_seed;
    int num_nodes;
    int feature_dim;
    double avg_degree;
  };
  // Six synthetic families: dense and sparse SBMs of varying size/width.
  const Family kFamilies[] = {
      {101, 40, 4, 3.0},  {102, 96, 6, 5.0},  {103, 150, 3, 2.0},
      {104, 200, 8, 6.0}, {105, 64, 5, 8.0},  {106, 220, 4, 4.0},
  };
  int version = 1;
  for (const Family& fam : kFamilies) {
    Graph graph = Sbm(fam.graph_seed, fam.num_nodes, fam.feature_dim,
                      fam.avg_degree);
    for (ModelFamily family : {ModelFamily::kGcn, ModelFamily::kSgc}) {
      SCOPED_TRACE("graph seed " + std::to_string(fam.graph_seed) +
                   " family " + std::to_string(static_cast<int>(family)));
      serve::ServableModel model =
          MakeServable(graph, version, family, 200 + version);
      ++version;
      serve::InferenceEngine reference(&graph, serve::EngineOptions{});
      auto expected = reference.PredictAll(model);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      for (int parts : {1, 2, 4}) {
        auto engine = PartitionedEngine::Create(graph, parts);
        ASSERT_TRUE(engine.ok()) << engine.status().ToString();
        for (int threads : {1, 4}) {
          SCOPED_TRACE("parts " + std::to_string(parts) + " threads " +
                       std::to_string(threads));
          ScopedNumThreads scoped(threads);
          auto got =
              engine.value()->PredictNodes(model, AllNodes(graph.num_nodes()));
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          EXPECT_TRUE(MatricesBitwiseEqual(got.value(), expected.value()));
        }
        if (parts == 1) {
          // P=1 fast path: no halo, so nothing ever crosses the exchange.
          EXPECT_EQ(engine.value()->rows_exchanged(), 0);
        }
      }
    }
  }
}

TEST(PartitionedEngineTest, RejectsUnsupportedFamiliesAndBadNodes) {
  Graph graph = Sbm(31, 40);
  auto engine = PartitionedEngine::Create(graph, 2);
  ASSERT_TRUE(engine.ok());
  serve::ServableModel gat = MakeServable(graph, 1, ModelFamily::kGat, 33);
  EXPECT_EQ(engine.value()->Warm(gat).code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(engine.value()->PredictNodes(gat, {0}).status().code(),
            Status::Code::kInvalidArgument);
  serve::ServableModel gcn = MakeServable(graph, 2, ModelFamily::kGcn, 34);
  EXPECT_EQ(engine.value()->PredictNodes(gcn, {40}).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(engine.value()->PredictNodes(gcn, {-1}).status().code(),
            Status::Code::kInvalidArgument);
}

// --- Dynamic conformance ---------------------------------------------------

TEST(PartitionDynamicTest, ApplyDeltaMatchesColdEngineOnMaterializedGraph) {
  Graph graph = Sbm(41, 80, 5, 4.0);
  serve::ServableModel gcn = MakeServable(graph, 1, ModelFamily::kGcn, 51);
  serve::ServableModel sgc = MakeServable(graph, 2, ModelFamily::kSgc, 52);

  auto snap0 = dyn::GraphSnapshot::FromGraph(graph);
  ASSERT_TRUE(snap0.ok()) << snap0.status().ToString();
  dyn::GraphSnapshot snap = std::move(snap0).value();

  for (int parts : {2, 4}) {
    SCOPED_TRACE("parts " + std::to_string(parts));
    auto engine_or = PartitionedEngine::Create(graph, parts);
    ASSERT_TRUE(engine_or.ok());
    PartitionedEngine& engine = *engine_or.value();
    // Warm both families BEFORE mutating so ApplyDelta must refresh them.
    ASSERT_TRUE(engine.Warm(gcn).ok());
    ASSERT_TRUE(engine.Warm(sgc).ok());

    dyn::GraphSnapshot current = snap;
    // Two batches: edge adds/removes + feature updates, then a node append
    // with fresh edges (exercises the plan-growth and forced-halo paths).
    std::vector<double> feat(static_cast<size_t>(graph.feature_dim()), 0.5);
    std::vector<std::vector<dyn::Mutation>> batches;
    {
      std::vector<dyn::Mutation> batch;
      int added = 0;
      for (int u = 0; u < graph.num_nodes() && added < 4; ++u) {
        const int v = (u + graph.num_nodes() / 2) % graph.num_nodes();
        if (u != v && !current.HasEdge(u, v)) {
          batch.push_back(dyn::Mutation::AddEdge(u, v, 1.0));
          ++added;
        }
      }
      batch.push_back(dyn::Mutation::UpdateFeatures(3, feat));
      batch.push_back(dyn::Mutation::UpdateFeatures(42, feat));
      batches.push_back(std::move(batch));
    }
    {
      std::vector<dyn::Mutation> batch;
      batch.push_back(dyn::Mutation::AddNode(feat));
      batch.push_back(
          dyn::Mutation::AddEdge(graph.num_nodes(), 0, 1.0));
      batch.push_back(
          dyn::Mutation::AddEdge(graph.num_nodes(), 17, 1.0));
      batches.push_back(std::move(batch));
    }

    for (size_t b = 0; b < batches.size(); ++b) {
      SCOPED_TRACE("batch " + std::to_string(b));
      auto next = current.Apply(batches[b]);
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      auto [applied, delta] = std::move(next).value();
      ASSERT_TRUE(engine.ApplyDelta(applied, delta).ok());
      current = std::move(applied);

      // Oracle: a cold engine over the from-scratch materialized graph.
      Graph rebuilt = current.MaterializeGraph();
      serve::InferenceEngine reference(&rebuilt, serve::EngineOptions{});
      for (const serve::ServableModel* model : {&gcn, &sgc}) {
        auto expected = reference.PredictAll(*model);
        ASSERT_TRUE(expected.ok());
        auto got =
            engine.PredictNodes(*model, AllNodes(rebuilt.num_nodes()));
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_TRUE(MatricesBitwiseEqual(got.value(), expected.value()))
            << "version " << model->version;
      }
    }

    // Version sync guard: replaying the first delta is rejected.
    auto replay = current.Apply({dyn::Mutation::UpdateFeatures(1, feat)});
    ASSERT_TRUE(replay.ok());
    auto [snap2, delta2] = std::move(replay).value();
    dyn::BatchDelta stale = delta2;
    stale.from_version = 0;
    EXPECT_EQ(engine.ApplyDelta(snap2, stale).code(),
              Status::Code::kInvalidArgument);
  }
}

// --- Fabric integration ----------------------------------------------------

std::string FreshDir(const std::string& name) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base ? base : "/tmp") + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::unique_ptr<serve::ModelRegistry> RegistryWith(
    const std::string& dir, const std::vector<serve::ServableModel>& models) {
  for (const serve::ServableModel& m : models) {
    AHG_CHECK(serve::ModelRegistry::Publish(dir, m.version, m.config,
                                            m.params, m.num_classes)
                  .ok());
  }
  auto registry = std::make_unique<serve::ModelRegistry>(dir);
  AHG_CHECK(registry->Refresh().ok());
  return registry;
}

serve::BatcherOptions TestBatcher(int num_threads) {
  serve::BatcherOptions batcher;
  batcher.max_batch_size = 8;
  batcher.deadline_ms = 0.0;
  batcher.num_threads = num_threads;
  batcher.max_queue_delay_ms = 2.0;
  return batcher;
}

TEST(PartitionedFabricTest, ServesBitwiseAndSurvivesMidTrafficRollout) {
  Graph graph = Sbm(61, 72, 6, 4.0);
  serve::ServableModel v1 = MakeServable(graph, 1, ModelFamily::kGcn, 71);
  serve::ServableModel v2 = MakeServable(graph, 2, ModelFamily::kSgc, 72);
  auto registry = RegistryWith(FreshDir("partition_fabric"), {v1, v2});

  serve::InferenceEngine reference(&graph, serve::EngineOptions{});
  auto ref1 = reference.PredictAll(*registry->Version(1));
  auto ref2 = reference.PredictAll(*registry->Version(2));
  ASSERT_TRUE(ref1.ok() && ref2.ok());

  for (int shards : {2, 4}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    fabric::FabricOptions options;
    options.num_shards = shards;
    options.batcher = TestBatcher(2);
    fabric::ServingFabric fabric(options);
    ASSERT_TRUE(fabric.ServePartitioned(&graph, registry.get()).ok());
    // Partitioned mode is exclusive with the other deployment modes.
    EXPECT_EQ(fabric.ServeGraph(&graph, registry.get()).code(),
              Status::Code::kInvalidArgument);
    EXPECT_EQ(fabric.AddTenant("alpha", &graph, registry.get()).code(),
              Status::Code::kInvalidArgument);
    ASSERT_TRUE(fabric.Rollout(1).ok());

    std::vector<std::future<serve::QueryResult>> futures;
    for (int node = 0; node < graph.num_nodes(); ++node) {
      futures.push_back(fabric.Query(node));
    }
    fabric.Flush();
    for (int node = 0; node < graph.num_nodes(); ++node) {
      serve::QueryResult result = futures[node].get();
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      EXPECT_EQ(result.served_version, 1);
      ASSERT_EQ(static_cast<int>(result.probs.size()), ref1.value().cols());
      EXPECT_EQ(std::memcmp(result.probs.data(), ref1.value().Row(node),
                            result.probs.size() * sizeof(double)),
                0)
          << "node " << node;
    }

    // Mid-traffic rollout onto the SGC version: enqueue, flip, enqueue.
    std::vector<std::future<serve::QueryResult>> mixed;
    for (int node = 0; node < graph.num_nodes() / 2; ++node) {
      mixed.push_back(fabric.Query(node));
    }
    ASSERT_TRUE(fabric.Rollout(2).ok());
    for (int node = graph.num_nodes() / 2; node < graph.num_nodes(); ++node) {
      mixed.push_back(fabric.Query(node));
    }
    fabric.Flush();
    for (int node = 0; node < graph.num_nodes(); ++node) {
      serve::QueryResult result = mixed[node].get();
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      const Matrix& ref =
          result.served_version == 1 ? ref1.value() : ref2.value();
      ASSERT_TRUE(result.served_version == 1 || result.served_version == 2);
      EXPECT_EQ(std::memcmp(result.probs.data(), ref.Row(node),
                            result.probs.size() * sizeof(double)),
                0)
          << "node " << node << " version " << result.served_version;
    }

    // Out-of-range node ids fail fast at the router.
    EXPECT_EQ(fabric.Query(graph.num_nodes()).get().status.code(),
              Status::Code::kInvalidArgument);
    fabric.Drain();
  }
}

TEST(PartitionedFabricTest, MutationsRouteThroughThePlan) {
  Graph graph = Sbm(63, 60, 5, 4.0);
  serve::ServableModel v1 = MakeServable(graph, 1, ModelFamily::kGcn, 73);
  auto registry = RegistryWith(FreshDir("partition_fabric_dyn"), {v1});

  fabric::FabricOptions options;
  options.num_shards = 2;
  options.batcher = TestBatcher(1);
  fabric::ServingFabric fabric(options);
  ASSERT_TRUE(fabric.ServePartitioned(&graph, registry.get()).ok());
  ASSERT_TRUE(fabric.Rollout(1).ok());

  // Mutations address the default tenant only.
  std::vector<double> feat(static_cast<size_t>(graph.feature_dim()), 0.75);
  EXPECT_EQ(fabric
                .SubmitMutation("alpha", dyn::Mutation::UpdateFeatures(0, feat))
                .status()
                .code(),
            Status::Code::kNotFound);
  auto seq0 = fabric.SubmitMutation(fabric::kDefaultTenant,
                                    dyn::Mutation::UpdateFeatures(2, feat));
  auto seq1 = fabric.SubmitMutation(fabric::kDefaultTenant,
                                    dyn::Mutation::AddEdge(2, 31, 1.0));
  ASSERT_TRUE(seq0.ok() && seq1.ok());
  EXPECT_EQ(seq0.value() + 1, seq1.value());
  ASSERT_TRUE(fabric.PublishStream(fabric::kDefaultTenant).ok());

  // Oracle: cold engine over the mutated graph, rebuilt from scratch.
  auto snap = dyn::GraphSnapshot::FromGraph(graph);
  ASSERT_TRUE(snap.ok());
  auto next = snap.value().Apply({dyn::Mutation::UpdateFeatures(2, feat),
                                  dyn::Mutation::AddEdge(2, 31, 1.0)});
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  Graph rebuilt = next.value().first.MaterializeGraph();
  serve::InferenceEngine reference(&rebuilt, serve::EngineOptions{});
  auto expected = reference.PredictAll(*registry->Version(1));
  ASSERT_TRUE(expected.ok());

  for (int node = 0; node < rebuilt.num_nodes(); ++node) {
    serve::QueryResult result = fabric.Query(node).get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(std::memcmp(result.probs.data(), expected.value().Row(node),
                          result.probs.size() * sizeof(double)),
              0)
        << "node " << node;
  }
  EXPECT_EQ(fabric.partitioned_engine()->snapshot_version(), 1u);
}

TEST(PartitionedFabricTest, RolloutRejectsUnsupportedFamilyWithoutFlip) {
  Graph graph = Sbm(65, 48, 5, 3.0);
  serve::ServableModel v1 = MakeServable(graph, 1, ModelFamily::kGcn, 75);
  serve::ServableModel v2 = MakeServable(graph, 2, ModelFamily::kGat, 76);
  auto registry = RegistryWith(FreshDir("partition_fabric_gat"), {v1, v2});

  fabric::FabricOptions options;
  options.num_shards = 2;
  options.batcher = TestBatcher(1);
  fabric::ServingFabric fabric(options);
  ASSERT_TRUE(fabric.ServePartitioned(&graph, registry.get()).ok());
  ASSERT_TRUE(fabric.Rollout(1).ok());
  EXPECT_EQ(fabric.Rollout(2).code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(fabric.pinned_version(), 1);  // prepare failed, no flip
  EXPECT_EQ(fabric.Rollout(99).code(), Status::Code::kNotFound);
  serve::QueryResult result = fabric.Query(0).get();
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.served_version, 1);
}

}  // namespace
}  // namespace ahg::partition
