#include "metrics/classification_report.h"

#include "gtest/gtest.h"

namespace ahg {
namespace {

TEST(ClassificationReportTest, PerfectPredictions) {
  Matrix probs = Matrix::FromRows({{1, 0}, {0, 1}, {1, 0}});
  ClassificationReport report =
      BuildClassificationReport(probs, {0, 1, 0}, {0, 1, 2}, 2);
  EXPECT_EQ(report.accuracy, 1.0);
  EXPECT_EQ(report.macro_f1, 1.0);
  EXPECT_EQ(report.micro_f1, 1.0);
  EXPECT_EQ(report.confusion(0, 0), 2.0);
  EXPECT_EQ(report.confusion(1, 1), 1.0);
  EXPECT_EQ(report.confusion(0, 1), 0.0);
  EXPECT_EQ(report.per_class[0].support, 2);
  EXPECT_EQ(report.per_class[1].support, 1);
}

TEST(ClassificationReportTest, KnownConfusion) {
  // truth:   0 1 1 0
  // pred:    0 0 1 1
  Matrix probs = Matrix::FromRows(
      {{0.9, 0.1}, {0.8, 0.2}, {0.1, 0.9}, {0.2, 0.8}});
  ClassificationReport report =
      BuildClassificationReport(probs, {0, 1, 1, 0}, {0, 1, 2, 3}, 2);
  EXPECT_NEAR(report.accuracy, 0.5, 1e-12);
  // class 0: tp=1 fp=1 fn=1 -> P=0.5 R=0.5 F1=0.5; class 1 symmetric.
  EXPECT_NEAR(report.per_class[0].precision, 0.5, 1e-12);
  EXPECT_NEAR(report.per_class[0].recall, 0.5, 1e-12);
  EXPECT_NEAR(report.per_class[1].f1, 0.5, 1e-12);
  EXPECT_NEAR(report.macro_f1, 0.5, 1e-12);
  EXPECT_EQ(report.confusion(1, 0), 1.0);
}

TEST(ClassificationReportTest, AbsentClassHasZeroSupportAndIsSkipped) {
  Matrix probs = Matrix::FromRows({{1, 0, 0}, {1, 0, 0}});
  ClassificationReport report =
      BuildClassificationReport(probs, {0, 0}, {0, 1}, 3);
  EXPECT_EQ(report.per_class[2].support, 0);
  EXPECT_NEAR(report.macro_f1, 1.0, 1e-12);  // only class 0 has support
}

TEST(ClassificationReportTest, FormatContainsHeadline) {
  Matrix probs = Matrix::FromRows({{1, 0}});
  ClassificationReport report =
      BuildClassificationReport(probs, {0}, {0}, 2);
  const std::string text = FormatClassificationReport(report);
  EXPECT_NE(text.find("accuracy: 1.000"), std::string::npos);
  EXPECT_NE(text.find("precision"), std::string::npos);
}

TEST(ClassificationReportTest, MicroF1EqualsAccuracy) {
  Matrix probs = Matrix::FromRows(
      {{0.6, 0.4}, {0.3, 0.7}, {0.8, 0.2}, {0.1, 0.9}});
  ClassificationReport report =
      BuildClassificationReport(probs, {1, 1, 0, 0}, {0, 1, 2, 3}, 2);
  EXPECT_NEAR(report.micro_f1, report.accuracy, 1e-12);
}

}  // namespace
}  // namespace ahg
