#include "core/trained_ensemble.h"

#include "graph/sampling.h"
#include "graph/synthetic.h"
#include "gtest/gtest.h"
#include "metrics/metrics.h"

namespace ahg {
namespace {

Graph TestGraph(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_nodes = 180;
  cfg.num_classes = 3;
  cfg.feature_dim = 10;
  cfg.avg_degree = 5.0;
  cfg.homophily = 0.9;
  cfg.feature_signal = 1.0;
  cfg.seed = seed;
  return GenerateSbmGraph(cfg);
}

std::vector<CandidateSpec> TinyPool() {
  CandidateSpec gcn = FindCandidate("GCN");
  gcn.config.hidden_dim = 12;
  CandidateSpec sgc = FindCandidate("SGC");
  sgc.config.hidden_dim = 12;
  return {gcn, sgc};
}

TrainConfig FastTrain() {
  TrainConfig cfg;
  cfg.max_epochs = 40;
  cfg.patience = 8;
  cfg.learning_rate = 2e-2;
  return cfg;
}

TEST(TrainedEnsembleTest, PredictsWellOnTrainingGraph) {
  Graph g = TestGraph(1);
  Rng rng(2);
  DataSplit split = RandomSplit(g, 0.5, 0.2, &rng);
  TrainedEnsemble ensemble = TrainedEnsemble::Train(
      TinyPool(), {{2, 2}, {1, 2}}, {0.5, 0.5}, g, split, FastTrain(), 3);
  EXPECT_EQ(ensemble.num_members(), 4);
  Matrix probs = ensemble.PredictProba(g);
  EXPECT_GT(Accuracy(probs, g.labels(), split.test), 0.7);
}

TEST(TrainedEnsembleTest, InductiveTransferFromSubgraphToFullGraph) {
  // Train on a 50% induced subgraph, predict on the full graph — the
  // proxy-to-full workflow the competition pipeline relies on.
  Graph full = TestGraph(4);
  Rng rng(5);
  Subgraph sub = SampleInducedSubgraph(full, 0.5, &rng);
  DataSplit sub_split = RandomSplit(sub.graph, 0.6, 0.2, &rng);
  TrainedEnsemble ensemble = TrainedEnsemble::Train(
      TinyPool(), {{2, 2}, {2, 2}}, {0.5, 0.5}, sub.graph, sub_split,
      FastTrain(), 6);
  Matrix probs = ensemble.PredictProba(full);
  EXPECT_EQ(probs.rows(), full.num_nodes());
  EXPECT_GT(Accuracy(probs, full.labels(), full.LabeledNodes()), 0.65);
}

TEST(TrainedEnsembleTest, SaveLoadPreservesPredictions) {
  Graph g = TestGraph(7);
  Rng rng(8);
  DataSplit split = RandomSplit(g, 0.5, 0.2, &rng);
  TrainedEnsemble ensemble = TrainedEnsemble::Train(
      TinyPool(), {{2}, {3}}, {0.7, 0.3}, g, split, FastTrain(), 9);
  Matrix before = ensemble.PredictProba(g);

  const std::string dir = "/tmp/ahg_trained_ensemble";
  ASSERT_TRUE(ensemble.Save(dir).ok());
  auto loaded = TrainedEnsemble::Load(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_members(), 2);
  EXPECT_NEAR(loaded.value().beta()[0], 0.7, 1e-12);
  Matrix after = loaded.value().PredictProba(g);
  EXPECT_TRUE(AllClose(before, after, 1e-12));
}

TEST(TrainedEnsembleTest, LoadRejectsMissingDirectory) {
  EXPECT_EQ(TrainedEnsemble::Load("/definitely/not/there").status().code(),
            Status::Code::kNotFound);
}

}  // namespace
}  // namespace ahg
