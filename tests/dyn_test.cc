// The dynamic-graph subsystem: mutation-log semantics, atomic batch
// validation, COW storage sharing across snapshot versions, row-subset
// SpMM bitwise guarantees, and the tentpole oracle — incremental
// propagation refresh is bitwise identical to a cold full recompute over
// randomized mutation batches, for GCN and SGC. Also covers the serving
// integration: InferenceEngine snapshot swap + installed hidden states,
// PropagationCache graph-scoped invalidation and its metrics mirror, and
// concurrent readers during ApplyPending (this test runs under TSan and
// ASan in CI).
#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "util/bitset.h"

#include "dyn/delta_csr.h"
#include "dyn/incremental.h"
#include "dyn/mutation.h"
#include "dyn/snapshot.h"
#include "dyn/stream_server.h"
#include "graph/synthetic.h"
#include "gtest/gtest.h"
#include "nn/linear.h"
#include "obs/metrics.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "serve/propagation_cache.h"

namespace ahg::dyn {
namespace {

Graph SmallGraph(uint64_t seed = 7, int num_nodes = 48) {
  SyntheticConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.num_classes = 3;
  cfg.feature_dim = 6;
  cfg.avg_degree = 3.0;
  cfg.seed = seed;
  return GenerateSbmGraph(cfg);
}

serve::ServableModel MakeServable(const Graph& graph, int version,
                                  ModelFamily family = ModelFamily::kGcn,
                                  uint64_t seed = 11) {
  serve::ServableModel model;
  model.version = version;
  model.num_classes = graph.num_classes();
  model.config.family = family;
  model.config.in_dim = graph.feature_dim();
  model.config.hidden_dim = 8;
  model.config.num_layers = 2;
  model.config.seed = seed;
  std::unique_ptr<GnnModel> zoo = BuildModel(model.config);
  Rng head_rng(model.config.seed ^ 0x5ca1ab1eULL);
  Linear head(zoo->params(), model.config.hidden_dim, model.num_classes,
              /*bias=*/true, &head_rng);
  model.params = zoo->params()->Snapshot();
  return model;
}

std::vector<Matrix> LayerParams(const serve::ServableModel& model) {
  return std::vector<Matrix>(model.params.begin(), model.params.end() - 2);
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int r = 0; r < a.rows(); ++r) {
    if (std::memcmp(a.Row(r), b.Row(r),
                    static_cast<size_t>(a.cols()) * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

// A random valid mutation against `snap`'s current topology. Unweighted
// (weight 1.0) so degree arithmetic stays exactly integral and the
// cross-path comparisons against a rebuilt static Graph are exact.
Mutation RandomMutation(const GraphSnapshot& snap, Rng* rng) {
  const int n = snap.num_nodes();
  while (true) {
    const int kind = static_cast<int>(rng->UniformInt(10));
    if (kind < 4) {  // add edge
      const int u = static_cast<int>(rng->UniformInt(n));
      const int v = static_cast<int>(rng->UniformInt(n));
      if (u == v || snap.HasEdge(u, v)) continue;
      return Mutation::AddEdge(u, v);
    }
    if (kind < 7) {  // remove a random existing edge
      const int u = static_cast<int>(rng->UniformInt(n));
      const DeltaCsr::RowRef row = snap.raw_adjacency().Row(u);
      if (row.nnz == 0) continue;
      const int v = row.cols[rng->UniformInt(row.nnz)];
      return Mutation::RemoveEdge(u, v);
    }
    if (kind < 9) {  // feature update
      const int u = static_cast<int>(rng->UniformInt(n));
      std::vector<double> f(snap.feature_dim());
      for (double& x : f) x = rng->Normal();
      return Mutation::UpdateFeatures(u, std::move(f));
    }
    std::vector<double> f(snap.feature_dim());  // add node
    for (double& x : f) x = rng->Normal();
    return Mutation::AddNode(std::move(f),
                             static_cast<int>(rng->UniformInt(3)));
  }
}

TEST(MutationLogTest, SequencesAndDrainsInArrivalOrder) {
  MutationLog log;
  EXPECT_EQ(log.Append(Mutation::AddEdge(0, 1)), 0u);
  EXPECT_EQ(log.Append(Mutation::RemoveEdge(0, 1)), 1u);
  EXPECT_EQ(log.Append(Mutation::AddEdge(2, 3)), 2u);
  EXPECT_EQ(log.pending(), 3u);
  std::vector<Mutation> first = log.Drain(/*max=*/2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].kind, MutationKind::kAddEdge);
  EXPECT_EQ(first[1].kind, MutationKind::kRemoveEdge);
  EXPECT_EQ(log.pending(), 1u);
  std::vector<Mutation> rest = log.Drain();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].u, 2);
  EXPECT_EQ(log.pending(), 0u);
  EXPECT_EQ(log.next_sequence(), 3u);
}

TEST(DeltaCsrTest, SpmmRowsMatchesFullSpmmBitwise) {
  Graph graph = SmallGraph(3);
  auto snap = GraphSnapshot::FromGraph(graph);
  ASSERT_TRUE(snap.ok());
  const DeltaCsr& adj = snap.value().adjacency();
  Rng rng(5);
  Matrix x(adj.cols(), 7);
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.cols(); ++c) x(r, c) = rng.Normal();
  }
  Matrix full = adj.Spmm(x);
  std::vector<int> rows = {0, 5, 11, 31, 47};
  Matrix subset = adj.SpmmRows(rows, x);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(std::memcmp(subset.Row(static_cast<int>(i)), full.Row(rows[i]),
                          static_cast<size_t>(x.cols()) * sizeof(double)),
              0);
  }
}

TEST(DeltaCsrTest, MatchesMaterializedSparseMatrixAfterOverrides) {
  Graph graph = SmallGraph(9);
  auto snap_or = GraphSnapshot::FromGraph(graph);
  ASSERT_TRUE(snap_or.ok());
  GraphSnapshot snap = std::move(snap_or).value();
  Rng rng(21);
  for (int step = 0; step < 5; ++step) {
    std::vector<Mutation> batch;
    for (int i = 0; i < 4; ++i) batch.push_back(RandomMutation(snap, &rng));
    auto applied = snap.Apply(batch);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    snap = std::move(applied).value().first;
  }
  const DeltaCsr& adj = snap.adjacency();
  SparseMatrix flat = adj.Materialize();
  Matrix x(adj.cols(), 5);
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.cols(); ++c) x(r, c) = rng.Normal();
  }
  EXPECT_TRUE(BitwiseEqual(adj.Spmm(x), flat.Spmm(x)));
}

TEST(SnapshotTest, Version0AdjacencyIsTheGraphsSymNormMatrix) {
  Graph graph = SmallGraph(13);
  auto snap = GraphSnapshot::FromGraph(graph);
  ASSERT_TRUE(snap.ok());
  const SparseMatrix& expected = graph.Adjacency(AdjacencyKind::kSymNorm);
  const DeltaCsr& adj = snap.value().adjacency();
  ASSERT_EQ(adj.rows(), expected.rows());
  ASSERT_EQ(adj.nnz(), expected.nnz());
  for (int r = 0; r < adj.rows(); ++r) {
    const DeltaCsr::RowRef row = adj.Row(r);
    ASSERT_EQ(row.nnz, expected.RowNnz(r));
    const int64_t begin = expected.row_ptr()[r];
    EXPECT_EQ(std::memcmp(row.cols, expected.col_idx().data() + begin,
                          static_cast<size_t>(row.nnz) * sizeof(int)),
              0);
    EXPECT_EQ(std::memcmp(row.vals, expected.values().data() + begin,
                          static_cast<size_t>(row.nnz) * sizeof(double)),
              0);
  }
}

TEST(SnapshotTest, RejectsInvalidMutationsAtomically) {
  Graph graph = SmallGraph(7);
  auto snap_or = GraphSnapshot::FromGraph(graph);
  ASSERT_TRUE(snap_or.ok());
  const GraphSnapshot& snap = snap_or.value();
  const uint64_t version = snap.version();
  const int64_t edges = snap.num_edges();

  // Find one present and one absent edge to build the invalid batches.
  int pu = -1, pv = -1, au = -1, av = -1;
  for (int u = 0; u < snap.num_nodes() && (pu < 0 || au < 0); ++u) {
    for (int v = 0; v < snap.num_nodes(); ++v) {
      if (u == v) continue;
      if (pu < 0 && snap.HasEdge(u, v)) {
        pu = u;
        pv = v;
      }
      if (au < 0 && !snap.HasEdge(u, v)) {
        au = u;
        av = v;
      }
    }
  }
  ASSERT_GE(pu, 0);
  ASSERT_GE(au, 0);

  const std::vector<std::vector<Mutation>> bad_batches = {
      {Mutation::AddEdge(0, snap.num_nodes())},       // endpoint range
      {Mutation::AddEdge(3, 3)},                      // self loop
      {Mutation::AddEdge(au, av, -1.0)},              // bad weight
      {Mutation::AddEdge(pu, pv)},                    // duplicate add
      {Mutation::RemoveEdge(au, av)},                 // missing remove
      {Mutation::UpdateFeatures(0, {1.0})},           // wrong feature width
      {Mutation::AddNode({1.0}, 0)},                  // wrong feature width
      {Mutation::AddNode(std::vector<double>(6, 0.0), 99)},  // bad label
      // Valid first mutation, invalid second: the whole batch must fail.
      {Mutation::AddEdge(au, av), Mutation::AddEdge(au, av)},
  };
  for (const auto& batch : bad_batches) {
    auto applied = snap.Apply(batch);
    EXPECT_FALSE(applied.ok());
  }
  // The source snapshot is untouched.
  EXPECT_EQ(snap.version(), version);
  EXPECT_EQ(snap.num_edges(), edges);
  EXPECT_TRUE(snap.HasEdge(pu, pv));
  EXPECT_FALSE(snap.HasEdge(au, av));
}

TEST(SnapshotTest, ApplyIsCopyOnWrite) {
  Graph graph = SmallGraph(31);
  auto snap_or = GraphSnapshot::FromGraph(graph);
  ASSERT_TRUE(snap_or.ok());
  const GraphSnapshot& v0 = snap_or.value();

  // Mutate around node 0; find a remote untouched node.
  int target = -1;
  for (int u = 1; u < v0.num_nodes(); ++u) {
    if (!v0.HasEdge(0, u) && u != 0) {
      target = u;
      break;
    }
  }
  ASSERT_GT(target, 0);
  auto applied = v0.Apply({Mutation::AddEdge(0, target)});
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  const GraphSnapshot& v1 = applied.value().first;
  const BatchDelta& delta = applied.value().second;
  EXPECT_EQ(v1.version(), 1u);
  EXPECT_TRUE(v1.HasEdge(0, target));
  EXPECT_FALSE(v0.HasEdge(0, target));

  // Untouched rows share storage with v0 (same base pointers); the mutated
  // endpoints were reallocated.
  int untouched = -1;
  DynamicBitset dirty(v1.num_nodes());
  for (int r : delta.dirty_adj_rows) dirty.Set(r);
  for (int r = 0; r < v0.num_nodes(); ++r) {
    if (!dirty.Test(r)) {
      untouched = r;
      break;
    }
  }
  ASSERT_GE(untouched, 0);
  EXPECT_EQ(v0.adjacency().Row(untouched).vals,
            v1.adjacency().Row(untouched).vals);
  EXPECT_NE(v0.adjacency().Row(0).vals, v1.adjacency().Row(0).vals);
  EXPECT_GT(v1.adjacency().overridden_rows(), 0);
  EXPECT_LT(v1.adjacency().overridden_rows(), v1.num_nodes());

  // Dirty sets: both endpoints plus their neighborhoods, and no feature
  // dirt for a pure edge mutation.
  EXPECT_TRUE(dirty.Test(0));
  EXPECT_TRUE(dirty.Test(target));
  EXPECT_TRUE(delta.dirty_feature_rows.empty());
  EXPECT_EQ(delta.edges_added, 1);
}

TEST(SnapshotTest, RebuiltRowsMatchFromScratchGraphBitwise) {
  Graph graph = SmallGraph(17);
  auto snap_or = GraphSnapshot::FromGraph(graph);
  ASSERT_TRUE(snap_or.ok());
  GraphSnapshot snap = std::move(snap_or).value();
  Rng rng(77);
  for (int step = 0; step < 8; ++step) {
    std::vector<Mutation> batch;
    for (int i = 0; i < 3; ++i) batch.push_back(RandomMutation(snap, &rng));
    auto applied = snap.Apply(batch);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    snap = std::move(applied).value().first;
  }
  // For unweighted graphs the degrees are exact integers, so the rebuilt
  // normalized rows must match a from-scratch Graph build bitwise.
  Graph rebuilt = snap.MaterializeGraph();
  const SparseMatrix& expected = rebuilt.Adjacency(AdjacencyKind::kSymNorm);
  const DeltaCsr& adj = snap.adjacency();
  ASSERT_EQ(adj.rows(), expected.rows());
  ASSERT_EQ(adj.nnz(), expected.nnz());
  for (int r = 0; r < adj.rows(); ++r) {
    const DeltaCsr::RowRef row = adj.Row(r);
    ASSERT_EQ(row.nnz, expected.RowNnz(r)) << "row " << r;
    const int64_t begin = expected.row_ptr()[r];
    EXPECT_EQ(std::memcmp(row.cols, expected.col_idx().data() + begin,
                          static_cast<size_t>(row.nnz) * sizeof(int)),
              0)
        << "row " << r;
    EXPECT_EQ(std::memcmp(row.vals, expected.values().data() + begin,
                          static_cast<size_t>(row.nnz) * sizeof(double)),
              0)
        << "row " << r;
  }
  // Features and labels survived the trip too.
  EXPECT_TRUE(BitwiseEqual(snap.DenseFeatures(), rebuilt.features()));
  for (int r = 0; r < snap.num_nodes(); ++r) {
    EXPECT_EQ(snap.label(r), rebuilt.labels()[r]);
  }
}

// The tentpole oracle: after every randomized batch, the incrementally
// patched H^(L) is bitwise identical to a cold full recompute on the same
// snapshot, and matches the zoo's ForwardInference on an independently
// rebuilt static Graph.
class IncrementalOracleTest : public ::testing::TestWithParam<ModelFamily> {};

TEST_P(IncrementalOracleTest, TwentyRandomBatchesStayBitwiseExact) {
  Graph graph = SmallGraph(41, /*num_nodes=*/64);
  serve::ServableModel model = MakeServable(graph, 1, GetParam());
  auto snap_or = GraphSnapshot::FromGraph(graph);
  ASSERT_TRUE(snap_or.ok());
  GraphSnapshot snap = std::move(snap_or).value();

  IncrementalPropagator prop(model.config, LayerParams(model));
  prop.FullRefresh(snap);
  ASSERT_TRUE(BitwiseEqual(*prop.hidden(), prop.ComputeFull(snap)));

  Rng rng(1234);
  int incremental_refreshes = 0;
  for (int step = 0; step < 20; ++step) {
    std::vector<Mutation> batch;
    const int batch_size = 1 + static_cast<int>(rng.UniformInt(4));
    for (int i = 0; i < batch_size; ++i) {
      batch.push_back(RandomMutation(snap, &rng));
    }
    auto applied = snap.Apply(batch);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    auto [next, delta] = std::move(applied).value();
    snap = std::move(next);
    auto stats = prop.Refresh(snap, delta);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    if (stats.value().incremental) ++incremental_refreshes;

    // Exact oracle: same snapshot, cold recompute through the same kernels.
    ASSERT_TRUE(BitwiseEqual(*prop.hidden(), prop.ComputeFull(snap)))
        << "step " << step << " diverged from the cold recompute";
  }
  // The dirty sets must have stayed small enough to exercise the
  // incremental path, not just the fallback.
  EXPECT_GT(incremental_refreshes, 0);

  // Cross-path: the zoo's frozen forward on an independently rebuilt
  // static Graph. Unweighted mutations keep every normalization input
  // exactly integral, so even this independent path agrees bitwise.
  Graph rebuilt = snap.MaterializeGraph();
  std::unique_ptr<GnnModel> zoo = BuildModel(model.config);
  zoo->params()->Restore(LayerParams(model));
  Matrix expected = zoo->ForwardInference(rebuilt, rebuilt.features());
  EXPECT_TRUE(BitwiseEqual(*prop.hidden(), expected));
}

INSTANTIATE_TEST_SUITE_P(Families, IncrementalOracleTest,
                         ::testing::Values(ModelFamily::kGcn,
                                           ModelFamily::kSgc));

TEST(IncrementalTest, FallsBackToFullRefreshWhenMostRowsDirty) {
  Graph graph = SmallGraph(19, /*num_nodes=*/32);
  serve::ServableModel model = MakeServable(graph, 1);
  auto snap_or = GraphSnapshot::FromGraph(graph);
  ASSERT_TRUE(snap_or.ok());
  GraphSnapshot snap = std::move(snap_or).value();
  RefreshOptions options;
  options.full_refresh_fraction = 0.05;  // force the fallback
  IncrementalPropagator prop(model.config, LayerParams(model), options);
  prop.FullRefresh(snap);
  Rng rng(3);
  auto applied = snap.Apply({RandomMutation(snap, &rng)});
  ASSERT_TRUE(applied.ok());
  auto [next, delta] = std::move(applied).value();
  snap = std::move(next);
  auto stats = prop.Refresh(snap, delta);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats.value().incremental);
  EXPECT_TRUE(BitwiseEqual(*prop.hidden(), prop.ComputeFull(snap)));
}

TEST(IncrementalTest, UnsupportedFamiliesAreGated) {
  ModelConfig config;
  config.family = ModelFamily::kGat;
  EXPECT_FALSE(IncrementalPropagator::Supports(config));
  config.family = ModelFamily::kGcn;
  EXPECT_TRUE(IncrementalPropagator::Supports(config));
  config.family = ModelFamily::kSgc;
  EXPECT_TRUE(IncrementalPropagator::Supports(config));
}

TEST(StreamingServerTest, EndStateMatchesStaticEngineOnRebuiltGraph) {
  Graph graph = SmallGraph(53, /*num_nodes=*/56);
  serve::ServableModel model = MakeServable(graph, 4);
  auto server_or = StreamingServer::Create(graph, model);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  StreamingServer& server = *server_or.value();

  Rng rng(99);
  for (int step = 0; step < 6; ++step) {
    for (int i = 0; i < 5; ++i) {
      server.Submit(RandomMutation(*server.snapshot(), &rng));
    }
    auto stats = server.ApplyPending();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  }
  EXPECT_EQ(server.version(), 6u);
  EXPECT_EQ(server.pending(), 0u);

  // Static engine on the from-scratch rebuild must agree bitwise.
  Graph rebuilt = server.snapshot()->MaterializeGraph();
  serve::InferenceEngine engine(&rebuilt, serve::EngineOptions{});
  std::vector<int> nodes;
  for (int i = 0; i < rebuilt.num_nodes(); i += 3) nodes.push_back(i);
  auto streamed = server.PredictNodes(nodes);
  auto statically = engine.PredictNodes(model, nodes);
  ASSERT_TRUE(streamed.ok());
  ASSERT_TRUE(statically.ok());
  EXPECT_TRUE(BitwiseEqual(streamed.value(), statically.value()));
}

TEST(StreamingServerTest, RejectedBatchLeavesPublishedStateIntact) {
  Graph graph = SmallGraph(61);
  serve::ServableModel model = MakeServable(graph, 1);
  auto server_or = StreamingServer::Create(graph, model);
  ASSERT_TRUE(server_or.ok());
  StreamingServer& server = *server_or.value();
  const uint64_t version = server.version();
  server.Submit(Mutation::AddEdge(0, graph.num_nodes() + 5));  // bad range
  auto stats = server.ApplyPending();
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(server.version(), version);
  auto probs = server.PredictNodes({0, 1});
  EXPECT_TRUE(probs.ok());
}

TEST(StreamingServerTest, ConcurrentReadersDuringApplyPending) {
  Graph graph = SmallGraph(67);
  serve::ServableModel model = MakeServable(graph, 2);
  auto server_or = StreamingServer::Create(graph, model);
  ASSERT_TRUE(server_or.ok());
  StreamingServer& server = *server_or.value();

  std::atomic<bool> stop{false};
  std::atomic<int> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::vector<int> nodes = {0, 1, 2, 3};
      // do/while: at least one read happens even if the mutator finishes
      // all its batches before this thread is first scheduled.
      do {
        auto probs = server.PredictNodes(nodes);
        ASSERT_TRUE(probs.ok());
        // Rows are softmax outputs whatever version they came from.
        for (int r = 0; r < probs.value().rows(); ++r) {
          double total = 0.0;
          for (int c = 0; c < probs.value().cols(); ++c) {
            total += probs.value()(r, c);
          }
          EXPECT_NEAR(total, 1.0, 1e-9);
        }
        reads.fetch_add(1);
      } while (!stop.load());
    });
  }
  Rng rng(7);
  for (int step = 0; step < 10; ++step) {
    for (int i = 0; i < 4; ++i) {
      server.Submit(RandomMutation(*server.snapshot(), &rng));
    }
    auto stats = server.ApplyPending();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(reads.load(), 0);
}

TEST(StreamingServerTest, PublishToSwapsEngineAndInstallsHiddenStates) {
  Graph graph = SmallGraph(71);
  serve::ServableModel model = MakeServable(graph, 3);
  auto server_or = StreamingServer::Create(graph, model);
  ASSERT_TRUE(server_or.ok());
  StreamingServer& server = *server_or.value();

  serve::InferenceEngine engine(&graph, serve::EngineOptions{});
  EXPECT_EQ(engine.graph_generation(), 0u);

  Rng rng(15);
  for (int i = 0; i < 6; ++i) {
    server.Submit(RandomMutation(*server.snapshot(), &rng));
  }
  ASSERT_TRUE(server.ApplyPending().ok());
  ASSERT_TRUE(server.PublishTo(&engine).ok());
  EXPECT_EQ(engine.graph_generation(), server.version() + 1);

  // The installed hidden states mean the first post-swap query is a cache
  // hit, and its answers match the streaming path bitwise.
  const int64_t misses_before = engine.cache().misses();
  std::vector<int> nodes = {0, 3, 9};
  auto from_engine = engine.PredictNodes(model, nodes);
  ASSERT_TRUE(from_engine.ok()) << from_engine.status().ToString();
  EXPECT_EQ(engine.cache().misses(), misses_before);
  auto from_server = server.PredictNodes(nodes);
  ASSERT_TRUE(from_server.ok());
  EXPECT_TRUE(BitwiseEqual(from_engine.value(), from_server.value()));

  // Re-publishing at the same version only refreshes the installed states.
  EXPECT_TRUE(server.PublishTo(&engine).ok());
  EXPECT_EQ(engine.graph_generation(), server.version() + 1);
}

TEST(InferenceEngineTest, SwapGraphRequiresIncreasingGenerations) {
  Graph graph = SmallGraph(73);
  Graph other = SmallGraph(74);
  serve::InferenceEngine engine(&graph, serve::EngineOptions{});
  EXPECT_FALSE(engine.SwapGraph(&other, 0).ok());
  EXPECT_TRUE(engine.SwapGraph(&other, 2).ok());
  EXPECT_FALSE(engine.SwapGraph(&graph, 2).ok());
  EXPECT_EQ(engine.graph_generation(), 2u);
}

TEST(PropagationCacheTest, PutInvalidateGraphAndMetricsMirror) {
  obs::Counter* evictions =
      obs::MetricsRegistry::Global().GetCounter("serve.cache_evictions");
  obs::Gauge* entries =
      obs::MetricsRegistry::Global().GetGauge("serve.cache_entries");
  const int64_t evictions_before = evictions->Value();

  serve::PropagationCache cache(/*byte_budget=*/0);
  EXPECT_EQ(serve::PropagationKey(serve::GraphId(0), 3), "g0/v3");
  auto value = std::make_shared<const Matrix>(2, 2);
  cache.Put(serve::PropagationKey(serve::GraphId(0), 1), value);
  cache.Put(serve::PropagationKey(serve::GraphId(0), 2), value);
  cache.Put(serve::PropagationKey(serve::GraphId(1), 1), value);
  EXPECT_EQ(cache.num_entries(), 3);
  EXPECT_DOUBLE_EQ(entries->Value(), 3.0);

  // Replacing a key keeps the entry count; old holders keep their value.
  cache.Put(serve::PropagationKey(serve::GraphId(1), 1),
            std::make_shared<const Matrix>(4, 4));
  EXPECT_EQ(cache.num_entries(), 3);

  cache.InvalidateGraph(serve::GraphId(0));
  EXPECT_EQ(cache.num_entries(), 1);
  EXPECT_DOUBLE_EQ(entries->Value(), 1.0);
  // Generation 1 products survived.
  bool computed = false;
  cache.GetOrCompute(serve::PropagationKey(serve::GraphId(1), 1), [&] {
    computed = true;
    return Matrix(1, 1);
  });
  EXPECT_FALSE(computed);

  // A byte budget this small evicts on the second insert, and the eviction
  // lands in the process-wide counter.
  serve::PropagationCache tiny(/*byte_budget=*/40);
  tiny.Put("g0/v1", std::make_shared<const Matrix>(2, 2));
  tiny.Put("g0/v2", std::make_shared<const Matrix>(2, 2));
  EXPECT_EQ(tiny.num_entries(), 1);
  EXPECT_EQ(tiny.evictions(), 1);
  EXPECT_GE(evictions->Value(), evictions_before + 1);
}

}  // namespace
}  // namespace ahg::dyn
