// Tests for the extension modules: Correct & Smooth / label propagation,
// random-search NAS, model serialization, and graph statistics.
#include <fstream>

#include "core/correct_smooth.h"
#include "core/nas_random.h"
#include "graph/statistics.h"
#include "graph/synthetic.h"
#include "gtest/gtest.h"
#include "io/model_store.h"
#include "metrics/metrics.h"
#include "nn/parameter_store.h"
#include "tasks/train_node.h"

namespace ahg {
namespace {

Graph HomophilousGraph(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_nodes = 200;
  cfg.num_classes = 3;
  cfg.feature_dim = 8;
  cfg.avg_degree = 6.0;
  cfg.homophily = 0.92;
  cfg.feature_signal = 0.4;
  cfg.seed = seed;
  return GenerateSbmGraph(cfg);
}

TEST(LabelPropagationTest, BeatsChanceOnHomophilousGraph) {
  Graph g = HomophilousGraph(1);
  Rng rng(2);
  DataSplit split = RandomSplit(g, 0.5, 0.0, &rng);
  Matrix probs = LabelPropagation(g, split.train, 20, 0.8);
  EXPECT_GT(Accuracy(probs, g.labels(), split.test), 0.6);
}

TEST(LabelPropagationTest, RowsAreDistributions) {
  Graph g = HomophilousGraph(2);
  Rng rng(3);
  DataSplit split = RandomSplit(g, 0.5, 0.0, &rng);
  Matrix probs = LabelPropagation(g, split.train, 10, 0.7);
  for (int r = 0; r < probs.rows(); ++r) {
    double total = 0.0;
    for (int c = 0; c < probs.cols(); ++c) {
      EXPECT_GE(probs(r, c), 0.0);
      total += probs(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(CorrectSmoothTest, ImprovesWeakBasePredictions) {
  Graph g = HomophilousGraph(3);
  Rng rng(4);
  DataSplit split = RandomSplit(g, 0.5, 0.1, &rng);
  // Deliberately weak base model: an undertrained shallow MLP.
  ModelConfig mcfg;
  mcfg.family = ModelFamily::kMlp;
  mcfg.hidden_dim = 8;
  mcfg.num_layers = 1;
  mcfg.dropout = 0.0;
  mcfg.seed = 5;
  TrainConfig tcfg;
  tcfg.max_epochs = 8;
  tcfg.patience = 8;
  tcfg.learning_rate = 1e-2;
  NodeTrainResult base = TrainSingleNodeModel(mcfg, g, split, tcfg);
  const double base_acc = Accuracy(base.probs, g.labels(), split.test);

  CorrectSmoothConfig cs;
  Matrix refined = CorrectAndSmooth(base.probs, g, split.train, cs);
  const double refined_acc = Accuracy(refined, g.labels(), split.test);
  EXPECT_GT(refined_acc, base_acc);
}

TEST(CorrectSmoothTest, OutputRowsAreDistributions) {
  Graph g = HomophilousGraph(4);
  Rng rng(5);
  DataSplit split = RandomSplit(g, 0.5, 0.0, &rng);
  Matrix uniform =
      Matrix::Constant(g.num_nodes(), g.num_classes(), 1.0 / g.num_classes());
  Matrix refined = CorrectAndSmooth(uniform, g, split.train, {});
  for (int r = 0; r < refined.rows(); ++r) {
    double total = 0.0;
    for (int c = 0; c < refined.cols(); ++c) {
      EXPECT_GE(refined(r, c), -1e-12);
      total += refined(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(NasRandomTest, ReturnsRequestedNumberOfNovelSpecs) {
  Graph g = HomophilousGraph(5);
  NasSearchConfig cfg;
  cfg.num_samples = 5;
  cfg.top_to_keep = 2;
  cfg.proxy.dataset_ratio = 0.6;
  cfg.proxy.bagging = 1;
  cfg.proxy.train.max_epochs = 8;
  cfg.proxy.train.patience = 4;
  cfg.seed = 6;
  std::vector<CandidateSpec> winners = RandomArchitectureSearch(
      g, {FindCandidate("GCN"), FindCandidate("SGC")}, cfg);
  ASSERT_EQ(winners.size(), 2u);
  for (const CandidateSpec& spec : winners) {
    EXPECT_EQ(spec.name.rfind("NAS-", 0), 0u) << spec.name;
    // The winning configs must be buildable.
    ModelConfig mc = spec.config;
    mc.in_dim = 8;
    EXPECT_NE(BuildModel(mc), nullptr);
  }
}

TEST(NasRandomTest, DeterministicGivenSeed) {
  Graph g = HomophilousGraph(6);
  NasSearchConfig cfg;
  cfg.num_samples = 4;
  cfg.top_to_keep = 2;
  cfg.proxy.dataset_ratio = 0.6;
  cfg.proxy.bagging = 1;
  cfg.proxy.train.max_epochs = 6;
  cfg.seed = 7;
  auto a = RandomArchitectureSearch(g, {FindCandidate("GCN")}, cfg);
  auto b = RandomArchitectureSearch(g, {FindCandidate("GCN")}, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].config.family, b[i].config.family);
    EXPECT_EQ(a[i].config.num_layers, b[i].config.num_layers);
  }
}

TEST(ModelStoreTest, SaveLoadRoundTrip) {
  ModelConfig cfg;
  cfg.family = ModelFamily::kGat;
  cfg.in_dim = 12;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.dropout = 0.25;
  cfg.heads = 2;
  cfg.teleport = 0.15;
  cfg.seed = 99;
  std::unique_ptr<GnnModel> model = BuildModel(cfg);
  std::vector<Matrix> snapshot = model->params()->Snapshot();

  const std::string path = "/tmp/ahg_model_roundtrip.ahgm";
  ASSERT_TRUE(SaveModel(path, cfg, snapshot).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().config.family, cfg.family);
  EXPECT_EQ(loaded.value().config.in_dim, cfg.in_dim);
  EXPECT_EQ(loaded.value().config.hidden_dim, cfg.hidden_dim);
  EXPECT_EQ(loaded.value().config.heads, cfg.heads);
  EXPECT_DOUBLE_EQ(loaded.value().config.dropout, cfg.dropout);
  EXPECT_DOUBLE_EQ(loaded.value().config.teleport, cfg.teleport);
  ASSERT_EQ(loaded.value().params.size(), snapshot.size());
  for (size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_TRUE(AllClose(loaded.value().params[i], snapshot[i], 0.0));
  }
  // Restoring into a freshly built model reproduces the weights exactly.
  std::unique_ptr<GnnModel> rebuilt = BuildModel(loaded.value().config);
  rebuilt->params()->Restore(loaded.value().params);
  EXPECT_TRUE(AllClose(rebuilt->params()->Snapshot()[0], snapshot[0], 0.0));
}

TEST(ModelStoreTest, RejectsGarbageFile) {
  const std::string path = "/tmp/ahg_model_garbage.ahgm";
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a model";
  }
  auto loaded = LoadModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kInvalidArgument);
}

TEST(ModelStoreTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadModel("/nope/missing.ahgm").status().code(),
            Status::Code::kNotFound);
}

TEST(GraphStatisticsTest, TriangleGraph) {
  // Triangle + pendant node: clustering 1.0 on the triangle corners that
  // have degree 2.
  Graph g = Graph::Create(
      4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}, {2, 3, 1.0}}, false,
      Matrix::Constant(4, 1, 1.0), {0, 0, 0, 1}, 2);
  GraphStatistics stats = ComputeStatistics(g);
  EXPECT_EQ(stats.num_nodes, 4);
  EXPECT_EQ(stats.connected_components, 1);
  EXPECT_EQ(stats.largest_component, 4);
  EXPECT_EQ(stats.max_degree, 3);
  // Nodes 0,1 have clustering 1; node 2 has 1/3; node 3 is skipped.
  EXPECT_NEAR(stats.avg_clustering, (1.0 + 1.0 + 1.0 / 3.0) / 3.0, 1e-12);
  EXPECT_NEAR(stats.edge_homophily, 0.75, 1e-12);
}

TEST(GraphStatisticsTest, DisconnectedComponentsCounted) {
  Graph g = Graph::Create(5, {{0, 1, 1.0}, {2, 3, 1.0}}, false,
                          Matrix::Constant(5, 1, 1.0), {0, 0, 1, 1, 0}, 2);
  GraphStatistics stats = ComputeStatistics(g);
  EXPECT_EQ(stats.connected_components, 3);  // {0,1}, {2,3}, {4}
  EXPECT_EQ(stats.largest_component, 2);
}

TEST(GraphStatisticsTest, HomophilyMatchesGeneratorKnob) {
  SyntheticConfig cfg;
  cfg.num_nodes = 600;
  cfg.num_classes = 4;
  cfg.avg_degree = 6.0;
  cfg.homophily = 0.85;
  cfg.seed = 9;
  GraphStatistics stats = ComputeStatistics(GenerateSbmGraph(cfg));
  EXPECT_NEAR(stats.edge_homophily, 0.85, 0.06);
}

}  // namespace
}  // namespace ahg
