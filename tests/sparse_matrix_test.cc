#include "tensor/sparse_matrix.h"

#include "gtest/gtest.h"
#include "util/rng.h"

namespace ahg {
namespace {

SparseMatrix RandomSparse(int rows, int cols, int nnz, Rng* rng) {
  std::vector<CooEntry> entries;
  for (int i = 0; i < nnz; ++i) {
    entries.push_back({static_cast<int>(rng->UniformInt(rows)),
                       static_cast<int>(rng->UniformInt(cols)),
                       rng->Normal()});
  }
  return SparseMatrix::FromCoo(rows, cols, std::move(entries));
}

TEST(SparseMatrixTest, FromCooMergesDuplicates) {
  SparseMatrix m = SparseMatrix::FromCoo(
      2, 2, {{0, 1, 2.0}, {0, 1, 3.0}, {1, 0, 1.0}});
  EXPECT_EQ(m.nnz(), 2);
  Matrix d = m.ToDense();
  EXPECT_EQ(d(0, 1), 5.0);
  EXPECT_EQ(d(1, 0), 1.0);
}

TEST(SparseMatrixTest, SpmmMatchesDense) {
  Rng rng(2);
  SparseMatrix a = RandomSparse(7, 5, 12, &rng);
  Matrix x = Matrix::Gaussian(5, 3, 1.0, &rng);
  EXPECT_TRUE(AllClose(a.Spmm(x), MatMul(a.ToDense(), x), 1e-10));
}

TEST(SparseMatrixTest, SpmmTransposedMatchesDense) {
  Rng rng(4);
  SparseMatrix a = RandomSparse(7, 5, 12, &rng);
  Matrix x = Matrix::Gaussian(7, 3, 1.0, &rng);
  EXPECT_TRUE(
      AllClose(a.SpmmTransposed(x), MatMul(Transpose(a.ToDense()), x), 1e-10));
}

TEST(SparseMatrixTest, TransposedMatchesDenseTranspose) {
  Rng rng(6);
  SparseMatrix a = RandomSparse(6, 4, 10, &rng);
  EXPECT_TRUE(AllClose(a.Transposed().ToDense(), Transpose(a.ToDense()),
                       1e-12));
}

TEST(SparseMatrixTest, RowSumsMatchDense) {
  Rng rng(8);
  SparseMatrix a = RandomSparse(5, 5, 9, &rng);
  Matrix d = a.ToDense();
  std::vector<double> sums = a.RowSums();
  for (int r = 0; r < 5; ++r) {
    double expected = 0.0;
    for (int c = 0; c < 5; ++c) expected += d(r, c);
    EXPECT_NEAR(sums[r], expected, 1e-12);
  }
}

TEST(SparseMatrixTest, EmptyRowsHandled) {
  SparseMatrix m = SparseMatrix::FromCoo(3, 3, {{0, 0, 1.0}});
  EXPECT_EQ(m.RowNnz(0), 1);
  EXPECT_EQ(m.RowNnz(1), 0);
  EXPECT_EQ(m.RowNnz(2), 0);
  Matrix x = Matrix::Constant(3, 2, 1.0);
  Matrix y = m.Spmm(x);
  EXPECT_EQ(y(1, 0), 0.0);
  EXPECT_EQ(y(0, 0), 1.0);
}

TEST(SparseMatrixTest, FromCooCheckedRejectsOutOfRangeEntries) {
  StatusOr<SparseMatrix> bad_row =
      SparseMatrix::FromCooChecked(2, 2, {{2, 0, 1.0}});
  ASSERT_FALSE(bad_row.ok());
  EXPECT_EQ(bad_row.status().code(), Status::Code::kInvalidArgument);

  StatusOr<SparseMatrix> bad_col =
      SparseMatrix::FromCooChecked(2, 2, {{0, -1, 1.0}});
  ASSERT_FALSE(bad_col.ok());

  StatusOr<SparseMatrix> bad_shape =
      SparseMatrix::FromCooChecked(-1, 2, {});
  ASSERT_FALSE(bad_shape.ok());

  StatusOr<SparseMatrix> good =
      SparseMatrix::FromCooChecked(2, 2, {{0, 1, 2.0}, {1, 0, 1.0}});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().nnz(), 2);
}

TEST(SparseMatrixDeathTest, FromCooAbortsOnOutOfRangeEntry) {
  EXPECT_DEATH(SparseMatrix::FromCoo(2, 2, {{0, 5, 1.0}}), "outside");
  EXPECT_DEATH(SparseMatrix::FromCoo(-3, 2, {}), "");
}

TEST(SparseMatrixDeathTest, RowNnzAbortsOutOfBounds) {
  SparseMatrix m = SparseMatrix::FromCoo(3, 3, {{0, 0, 1.0}});
  EXPECT_EQ(m.RowNnz(2), 0);
  EXPECT_DEATH(m.RowNnz(3), "");
  EXPECT_DEATH(m.RowNnz(-1), "");
}

TEST(SparseMatrixTest, SpmmTransposedUsesCacheAfterValueMutation) {
  // mutable_values() must invalidate the cached transpose, or
  // SpmmTransposed would keep multiplying stale values.
  Rng rng(12);
  SparseMatrix a = RandomSparse(6, 4, 9, &rng);
  Matrix x = Matrix::Gaussian(6, 2, 1.0, &rng);
  (void)a.SpmmTransposed(x);  // build the cache
  for (double& v : *a.mutable_values()) v *= 2.0;
  EXPECT_TRUE(AllClose(a.SpmmTransposed(x),
                       MatMul(Transpose(a.ToDense()), x), 1e-10));
}

TEST(SparseMatrixTest, RowPtrIsMonotone) {
  Rng rng(10);
  SparseMatrix a = RandomSparse(20, 20, 60, &rng);
  for (int r = 0; r < 20; ++r) {
    EXPECT_LE(a.row_ptr()[r], a.row_ptr()[r + 1]);
  }
  EXPECT_EQ(a.row_ptr()[20], a.nnz());
}

}  // namespace
}  // namespace ahg
