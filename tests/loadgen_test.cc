// The deterministic traffic simulator behind bench/fabric_load: fixed seed
// => bit-identical arrival schedules and zipfian draws; open-loop arrival
// counts agree with the integrated rate envelope within a Poisson deviation
// bound; closed-loop client streams are per-client deterministic and
// independent of interleaving; tenant mixes and burst windows reproduce.
#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "fabric/loadgen.h"
#include "gtest/gtest.h"

namespace ahg::fabric {
namespace {

TrafficOptions BaseOptions() {
  TrafficOptions options;
  options.seed = 17;
  options.num_nodes = 500;
  options.zipf_exponent = 0.99;
  options.duration_s = 2.0;
  options.base_qps = 2000.0;
  options.diurnal_amplitude = 0.5;
  options.diurnal_period_s = 1.0;
  return options;
}

TEST(ZipfianSamplerTest, ProbabilitiesAreNormalizedAndMonotone) {
  ZipfianSampler zipf(100, 1.0);
  double total = 0.0;
  for (int k = 0; k < zipf.num_items(); ++k) {
    total += zipf.Probability(k);
    if (k > 0) {
      EXPECT_LT(zipf.Probability(k), zipf.Probability(k - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // s = 0 degenerates to uniform.
  ZipfianSampler uniform(10, 0.0);
  for (int k = 0; k < 10; ++k) {
    EXPECT_NEAR(uniform.Probability(k), 0.1, 1e-12);
  }
}

TEST(ZipfianSamplerTest, DrawsAreReproducibleAndHeadHeavy) {
  ZipfianSampler zipf(1000, 0.99);
  Rng a(5);
  Rng b(5);
  std::vector<int> counts(1000, 0);
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const int rank = zipf.Sample(&a);
    ASSERT_EQ(zipf.Sample(&b), rank);  // same seed, same stream
    ASSERT_GE(rank, 0);
    ASSERT_LT(rank, 1000);
    ++counts[rank];
  }
  // The head dominates the tail: rank 0 alone beats the last 500 ranks
  // combined (true by a wide margin for s ~ 1).
  const int tail = std::accumulate(counts.begin() + 500, counts.end(), 0);
  EXPECT_GT(counts[0], tail);
  // Empirical head frequency tracks the exact probability within 20%.
  const double p0 = zipf.Probability(0);
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), p0, 0.2 * p0);
}

TEST(TrafficSimulatorTest, FixedSeedYieldsIdenticalSchedule) {
  TrafficOptions options = BaseOptions();
  options.tenant_weights = {4.0, 2.0, 1.0};
  options.burst_multiplier = 3.0;
  options.burst_fraction = 0.2;
  TrafficSimulator a(options);
  TrafficSimulator b(options);
  const std::vector<Arrival> sa = a.OpenLoopSchedule();
  const std::vector<Arrival> sb = b.OpenLoopSchedule();
  ASSERT_FALSE(sa.empty());
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].time_ms, sb[i].time_ms);  // bitwise, not approximate
    EXPECT_EQ(sa[i].tenant, sb[i].tenant);
    EXPECT_EQ(sa[i].node, sb[i].node);
  }
  // The same simulator re-asked also reproduces (the schedule is a pure
  // function of the options, not of simulator state).
  const std::vector<Arrival> sa2 = a.OpenLoopSchedule();
  ASSERT_EQ(sa2.size(), sa.size());
  EXPECT_EQ(sa2.front().time_ms, sa.front().time_ms);
  EXPECT_EQ(sa2.back().node, sa.back().node);

  // A different seed produces a different schedule.
  options.seed = 18;
  TrafficSimulator c(options);
  const std::vector<Arrival> sc = c.OpenLoopSchedule();
  EXPECT_TRUE(sc.size() != sa.size() ||
              sc.front().time_ms != sa.front().time_ms);
}

TEST(TrafficSimulatorTest, ArrivalsAreSortedWithinDurationAndInRange) {
  TrafficOptions options = BaseOptions();
  options.tenant_weights = {1.0, 1.0};
  TrafficSimulator sim(options);
  const std::vector<Arrival> schedule = sim.OpenLoopSchedule();
  ASSERT_FALSE(schedule.empty());
  double prev = -1.0;
  for (const Arrival& arrival : schedule) {
    EXPECT_GE(arrival.time_ms, prev);
    prev = arrival.time_ms;
    EXPECT_LT(arrival.time_ms, options.duration_s * 1000.0);
    EXPECT_GE(arrival.node, 0);
    EXPECT_LT(arrival.node, options.num_nodes);
    EXPECT_GE(arrival.tenant, 0);
    EXPECT_LT(arrival.tenant, 2);
  }
}

TEST(TrafficSimulatorTest, ArrivalCountMatchesIntegratedEnvelope) {
  TrafficOptions options = BaseOptions();
  options.burst_multiplier = 2.0;
  options.burst_fraction = 0.25;
  options.num_bursts = 3;
  TrafficSimulator sim(options);
  const double expected = sim.ExpectedOpenLoopArrivals();
  // Sanity on the envelope itself: above the no-burst floor, below peak.
  EXPECT_GT(expected, options.base_qps * options.duration_s * 0.9);
  EXPECT_LT(expected, options.base_qps * options.duration_s *
                          (1.0 + options.diurnal_amplitude) *
                          options.burst_multiplier);
  const double actual =
      static_cast<double>(sim.OpenLoopSchedule().size());
  // Poisson: stddev = sqrt(mean); 5 sigma keeps the deterministic draw
  // comfortably inside while still pinning the rate to ~±6%.
  EXPECT_NEAR(actual, expected, 5.0 * std::sqrt(expected));
}

TEST(TrafficSimulatorTest, BurstWindowsScaleTheRateDeterministically) {
  TrafficOptions options = BaseOptions();
  options.diurnal_amplitude = 0.0;  // isolate the burst term
  options.burst_multiplier = 4.0;
  options.burst_fraction = 0.2;
  options.num_bursts = 2;
  TrafficSimulator a(options);
  TrafficSimulator b(options);
  ASSERT_EQ(a.bursts().size(), b.bursts().size());
  ASSERT_FALSE(a.bursts().empty());
  for (size_t i = 0; i < a.bursts().size(); ++i) {
    EXPECT_EQ(a.bursts()[i].first, b.bursts()[i].first);
    EXPECT_EQ(a.bursts()[i].second, b.bursts()[i].second);
    EXPECT_LT(a.bursts()[i].first, a.bursts()[i].second);
    EXPECT_GE(a.bursts()[i].first, 0.0);
    EXPECT_LE(a.bursts()[i].second, options.duration_s);
  }
  const auto& [start, end] = a.bursts().front();
  const double mid = 0.5 * (start + end);
  EXPECT_EQ(a.RateAt(mid), options.base_qps * options.burst_multiplier);
  // Just outside any window the rate is the bare base.
  double outside = -1.0;
  for (double t = 0.0; t < options.duration_s; t += 1e-3) {
    bool in_burst = false;
    for (const auto& [bs, be] : a.bursts()) {
      if (t >= bs && t < be) in_burst = true;
    }
    if (!in_burst) {
      outside = t;
      break;
    }
  }
  ASSERT_GE(outside, 0.0);
  EXPECT_EQ(a.RateAt(outside), options.base_qps);
}

TEST(TrafficSimulatorTest, TenantMixTracksWeights) {
  TrafficOptions options = BaseOptions();
  options.duration_s = 5.0;
  options.tenant_weights = {6.0, 3.0, 1.0};
  TrafficSimulator sim(options);
  const std::vector<Arrival> schedule = sim.OpenLoopSchedule();
  ASSERT_GT(schedule.size(), 2000u);
  std::map<int, int> counts;
  for (const Arrival& arrival : schedule) ++counts[arrival.tenant];
  const double total = static_cast<double>(schedule.size());
  EXPECT_NEAR(counts[0] / total, 0.6, 0.05);
  EXPECT_NEAR(counts[1] / total, 0.3, 0.05);
  EXPECT_NEAR(counts[2] / total, 0.1, 0.05);
}

TEST(TrafficSimulatorTest, ClosedLoopClientsAreDeterministicAndIndependent) {
  TrafficOptions options = BaseOptions();
  options.closed_loop_clients = 4;
  options.tenant_weights = {1.0, 1.0};

  // Reference: each client's draws taken in client-major order.
  TrafficSimulator reference(options);
  std::vector<std::vector<Arrival>> expected(4);
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 64; ++i) {
      expected[static_cast<size_t>(c)].push_back(reference.NextQuery(c));
    }
  }

  // Same draws in round-robin (interleaved) order: a client's stream does
  // not depend on when other clients draw.
  TrafficSimulator interleaved(options);
  std::vector<size_t> cursor(4, 0);
  for (int i = 0; i < 64; ++i) {
    for (int c = 0; c < 4; ++c) {
      const Arrival got = interleaved.NextQuery(c);
      const Arrival& want = expected[static_cast<size_t>(c)][cursor[c]++];
      ASSERT_EQ(got.node, want.node) << "client " << c << " draw " << i;
      ASSERT_EQ(got.tenant, want.tenant);
    }
  }

  // Distinct clients see distinct streams (forked, not copied).
  bool any_difference = false;
  for (size_t i = 0; i < expected[0].size(); ++i) {
    if (expected[0][i].node != expected[1][i].node) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(TrafficSimulatorTest, OpenAndClosedLoopShareThePopularityModel) {
  // Both loops draw nodes from the same zipfian, so their head frequencies
  // agree with each other (and with the exact probability) within noise.
  TrafficOptions options = BaseOptions();
  options.duration_s = 4.0;
  options.zipf_exponent = 1.2;
  options.closed_loop_clients = 2;
  TrafficSimulator sim(options);

  int open_head = 0;
  const std::vector<Arrival> schedule = sim.OpenLoopSchedule();
  ASSERT_GT(schedule.size(), 1000u);
  for (const Arrival& arrival : schedule) {
    if (arrival.node == 0) ++open_head;
  }
  constexpr int kClosedDraws = 8000;
  int closed_head = 0;
  for (int i = 0; i < kClosedDraws; ++i) {
    if (sim.NextQuery(i % 2).node == 0) ++closed_head;
  }
  const double p0 = sim.zipf().Probability(0);
  EXPECT_NEAR(open_head / static_cast<double>(schedule.size()), p0,
              0.15 * p0 + 0.01);
  EXPECT_NEAR(closed_head / static_cast<double>(kClosedDraws), p0,
              0.15 * p0 + 0.01);
}

}  // namespace
}  // namespace ahg::fabric
