// Parameterized checks over every architecture in the zoo: output shapes,
// gradient flow to all parameters, seed-determinism, and layer-count
// contracts. These are the invariants GSE and the searches rely on.
#include <cctype>
#include <set>
#include <string>

#include "autodiff/ops.h"
#include "graph/synthetic.h"
#include "gtest/gtest.h"
#include "models/model.h"
#include "models/model_zoo.h"

namespace ahg {
namespace {

const Graph& TestGraph() {
  static const Graph* graph = [] {
    SyntheticConfig cfg;
    cfg.num_nodes = 60;
    cfg.num_classes = 3;
    cfg.feature_dim = 10;
    cfg.avg_degree = 4.0;
    cfg.seed = 42;
    return new Graph(GenerateSbmGraph(cfg));
  }();
  return *graph;
}

ModelConfig BaseConfig(ModelFamily family) {
  ModelConfig cfg;
  cfg.family = family;
  cfg.in_dim = TestGraph().feature_dim();
  cfg.hidden_dim = 12;
  cfg.num_layers = 3;
  cfg.dropout = 0.3;
  cfg.heads = 4;
  cfg.seed = 7;
  return cfg;
}

class ModelFamilyTest : public ::testing::TestWithParam<ModelFamily> {};

TEST_P(ModelFamilyTest, LayerOutputShapes) {
  ModelConfig cfg = BaseConfig(GetParam());
  std::unique_ptr<GnnModel> model = BuildModel(cfg);
  GnnContext ctx{&TestGraph(), /*training=*/false, nullptr};
  Var x = MakeConstant(TestGraph().features());
  std::vector<Var> layers = model->LayerOutputs(ctx, x);
  ASSERT_EQ(static_cast<int>(layers.size()), cfg.num_layers);
  for (const Var& h : layers) {
    EXPECT_EQ(h->rows(), TestGraph().num_nodes());
    EXPECT_EQ(h->cols(), cfg.hidden_dim);
  }
}

TEST_P(ModelFamilyTest, GradientsReachEveryParameter) {
  ModelConfig cfg = BaseConfig(GetParam());
  cfg.dropout = 0.0;  // keep the graph deterministic and fully connected
  std::unique_ptr<GnnModel> model = BuildModel(cfg);
  GnnContext ctx{&TestGraph(), /*training=*/true, nullptr};
  Rng rng(3);
  ctx.rng = &rng;
  Var x = MakeConstant(TestGraph().features());
  std::vector<Var> layers = model->LayerOutputs(ctx, x);
  // Sum over ALL layer outputs so even layer-specific weights participate.
  Var loss = SumAll(CWiseMul(AddN(layers), AddN(layers)));
  model->params()->ZeroGrad();
  Backward(loss);
  int with_grad = 0;
  for (const Var& p : model->params()->params()) {
    if (!p->grad.empty() && p->grad.SquaredNorm() > 0.0) ++with_grad;
  }
  // Bias-only or gate parameters can have structurally zero gradients in
  // corner cases, but the vast majority must receive signal.
  EXPECT_GE(with_grad,
            static_cast<int>(model->params()->params().size()) - 1)
      << "family " << ModelFamilyName(cfg.family);
}

TEST_P(ModelFamilyTest, DeterministicGivenSeed) {
  ModelConfig cfg = BaseConfig(GetParam());
  std::unique_ptr<GnnModel> m1 = BuildModel(cfg);
  std::unique_ptr<GnnModel> m2 = BuildModel(cfg);
  GnnContext ctx{&TestGraph(), /*training=*/false, nullptr};
  Var x = MakeConstant(TestGraph().features());
  Var h1 = m1->LayerOutputs(ctx, x).back();
  Var h2 = m2->LayerOutputs(ctx, x).back();
  EXPECT_TRUE(AllClose(h1->value, h2->value, 0.0));
}

TEST_P(ModelFamilyTest, DifferentSeedsProduceDifferentOutputs) {
  ModelConfig cfg = BaseConfig(GetParam());
  std::unique_ptr<GnnModel> m1 = BuildModel(cfg);
  cfg.seed = cfg.seed + 1;
  std::unique_ptr<GnnModel> m2 = BuildModel(cfg);
  GnnContext ctx{&TestGraph(), /*training=*/false, nullptr};
  Var x = MakeConstant(TestGraph().features());
  Var h1 = m1->LayerOutputs(ctx, x).back();
  Var h2 = m2->LayerOutputs(ctx, x).back();
  EXPECT_FALSE(AllClose(h1->value, h2->value, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ModelFamilyTest,
    ::testing::Values(ModelFamily::kGcn, ModelFamily::kSageMean,
                      ModelFamily::kSagePool, ModelFamily::kGat,
                      ModelFamily::kSgc, ModelFamily::kTagcn,
                      ModelFamily::kAppnp, ModelFamily::kGin,
                      ModelFamily::kGcnii, ModelFamily::kJkMax,
                      ModelFamily::kDnaHighway, ModelFamily::kMixHop,
                      ModelFamily::kDagnn, ModelFamily::kCheb,
                      ModelFamily::kGatedGnn, ModelFamily::kMlp,
                      ModelFamily::kArma, ModelFamily::kGraphConv,
                      ModelFamily::kAgnn),
    [](const ::testing::TestParamInfo<ModelFamily>& info) {
      std::string name = ModelFamilyName(info.param);
      std::string out;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) out.push_back(c);
      }
      return out;
    });

TEST(ModelZooTest, DefaultPoolHasTwentyPlusUniqueCandidates) {
  std::vector<CandidateSpec> pool = DefaultCandidatePool();
  EXPECT_GE(pool.size(), 20u);
  std::set<std::string> names;
  for (const auto& spec : pool) names.insert(spec.name);
  EXPECT_EQ(names.size(), pool.size());
}

TEST(ModelZooTest, EveryCandidateBuilds) {
  for (const CandidateSpec& spec : DefaultCandidatePool()) {
    ModelConfig cfg = spec.config;
    cfg.in_dim = 8;
    std::unique_ptr<GnnModel> model = BuildModel(cfg);
    EXPECT_NE(model, nullptr) << spec.name;
    EXPECT_GT(model->params()->NumParams(), 0) << spec.name;
  }
}

TEST(ModelZooTest, FindCandidateReturnsNamedSpec) {
  CandidateSpec spec = FindCandidate("GCNII");
  EXPECT_EQ(spec.name, "GCNII");
  EXPECT_EQ(spec.config.family, ModelFamily::kGcnii);
}

TEST(ModelZooTest, CompactPoolIsSubsetOfDefault) {
  for (const CandidateSpec& spec : CompactCandidatePool()) {
    EXPECT_EQ(FindCandidate(spec.name).name, spec.name);
  }
}

TEST(ModelZooTest, GatHeadWidthsAbsorbRemainder) {
  // hidden_dim not divisible by heads must still produce hidden_dim outputs.
  ModelConfig cfg = BaseConfig(ModelFamily::kGat);
  cfg.hidden_dim = 13;
  cfg.heads = 4;
  std::unique_ptr<GnnModel> model = BuildModel(cfg);
  GnnContext ctx{&TestGraph(), false, nullptr};
  Var x = MakeConstant(TestGraph().features());
  EXPECT_EQ(model->LayerOutputs(ctx, x).back()->cols(), 13);
}

TEST(ModelZooTest, MixHopWidthsAbsorbRemainder) {
  ModelConfig cfg = BaseConfig(ModelFamily::kMixHop);
  cfg.hidden_dim = 13;
  std::unique_ptr<GnnModel> model = BuildModel(cfg);
  GnnContext ctx{&TestGraph(), false, nullptr};
  Var x = MakeConstant(TestGraph().features());
  EXPECT_EQ(model->LayerOutputs(ctx, x).back()->cols(), 13);
}

}  // namespace
}  // namespace ahg
