#include <cmath>

#include "autodiff/ops.h"
#include "autodiff/variable.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace ahg {
namespace {

TEST(VariableTest, ConstantsDoNotRequireGrad) {
  Var c = MakeConstant(Matrix::FromRows({{1, 2}}));
  EXPECT_FALSE(c->requires_grad);
  Var p = MakeParam(Matrix::FromRows({{1, 2}}));
  EXPECT_TRUE(p->requires_grad);
}

TEST(VariableTest, OpNodeInfersRequiresGrad) {
  Var c1 = MakeConstant(Matrix::FromRows({{1.0}}));
  Var c2 = MakeConstant(Matrix::FromRows({{2.0}}));
  EXPECT_FALSE(Add(c1, c2)->requires_grad);
  Var p = MakeParam(Matrix::FromRows({{1.0}}));
  EXPECT_TRUE(Add(c1, p)->requires_grad);
}

TEST(BackwardTest, SimpleChain) {
  // loss = sum(3 * p) -> dloss/dp = 3.
  Var p = MakeParam(Matrix::FromRows({{1, 2}, {3, 4}}));
  Var loss = SumAll(ScalarMul(p, 3.0));
  Backward(loss);
  for (int64_t i = 0; i < p->grad.size(); ++i) {
    EXPECT_NEAR(p->grad.data()[i], 3.0, 1e-12);
  }
}

TEST(BackwardTest, SharedSubexpressionAccumulates) {
  // loss = sum(p + p) -> dloss/dp = 2.
  Var p = MakeParam(Matrix::FromRows({{1.0}}));
  Var loss = SumAll(Add(p, p));
  Backward(loss);
  EXPECT_NEAR(p->grad(0, 0), 2.0, 1e-12);
}

TEST(BackwardTest, DiamondGraphAccumulates) {
  // a = 2p, b = 3p, loss = sum(a*b) = 6p^2 -> d/dp = 12p.
  Var p = MakeParam(Matrix::FromRows({{2.0}}));
  Var loss = SumAll(CWiseMul(ScalarMul(p, 2.0), ScalarMul(p, 3.0)));
  Backward(loss);
  EXPECT_NEAR(p->grad(0, 0), 24.0, 1e-9);
}

TEST(BackwardTest, GradsAccumulateAcrossCallsUntilZeroed) {
  Var p = MakeParam(Matrix::FromRows({{1.0}}));
  for (int i = 0; i < 2; ++i) {
    Var loss = SumAll(ScalarMul(p, 5.0));
    Backward(loss);
  }
  EXPECT_NEAR(p->grad(0, 0), 10.0, 1e-12);
  p->ZeroGrad();
  EXPECT_EQ(p->grad(0, 0), 0.0);
}

TEST(BackwardTest, ConstantBranchReceivesNoGrad) {
  Var p = MakeParam(Matrix::FromRows({{1.0}}));
  Var c = MakeConstant(Matrix::FromRows({{7.0}}));
  Var loss = SumAll(CWiseMul(p, c));
  Backward(loss);
  EXPECT_TRUE(c->grad.empty());
  EXPECT_NEAR(p->grad(0, 0), 7.0, 1e-12);
}

TEST(OpsForwardTest, MatMulValue) {
  Var a = MakeConstant(Matrix::FromRows({{1, 2}}));
  Var b = MakeConstant(Matrix::FromRows({{3}, {4}}));
  EXPECT_NEAR(MatMul(a, b)->value(0, 0), 11.0, 1e-12);
}

TEST(OpsForwardTest, ActivationValues) {
  Var x = MakeConstant(Matrix::FromRows({{-1.0, 0.0, 2.0}}));
  EXPECT_EQ(Relu(x)->value(0, 0), 0.0);
  EXPECT_EQ(Relu(x)->value(0, 2), 2.0);
  EXPECT_NEAR(LeakyRelu(x, 0.1)->value(0, 0), -0.1, 1e-12);
  EXPECT_NEAR(Elu(x)->value(0, 0), std::expm1(-1.0), 1e-12);
  EXPECT_NEAR(Sigmoid(x)->value(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(Tanh(x)->value(0, 2), std::tanh(2.0), 1e-12);
}

TEST(OpsForwardTest, DropoutEvalIsIdentity) {
  Rng rng(1);
  Var x = MakeParam(Matrix::FromRows({{1, 2, 3}}));
  Var y = Dropout(x, 0.5, /*training=*/false, &rng);
  EXPECT_EQ(y.get(), x.get());
}

TEST(OpsForwardTest, DropoutTrainPreservesMeanRoughly) {
  Rng rng(123);
  Var x = MakeConstant(Matrix::Constant(1, 20000, 1.0));
  Var y = Dropout(x, 0.3, /*training=*/true, &rng);
  EXPECT_NEAR(y->value.Sum() / 20000.0, 1.0, 0.03);
}

TEST(OpsForwardTest, ConcatColsLaysOutParts) {
  Var a = MakeConstant(Matrix::FromRows({{1}, {2}}));
  Var b = MakeConstant(Matrix::FromRows({{3, 4}, {5, 6}}));
  Var c = ConcatCols({a, b});
  EXPECT_EQ(c->cols(), 3);
  EXPECT_EQ(c->value(1, 2), 6.0);
  EXPECT_EQ(c->value(0, 0), 1.0);
}

TEST(OpsForwardTest, GatherRowsPicksRows) {
  Var a = MakeConstant(Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}}));
  Var g = GatherRows(a, {2, 0});
  EXPECT_EQ(g->value(0, 0), 3.0);
  EXPECT_EQ(g->value(1, 0), 1.0);
}

TEST(OpsForwardTest, SoftmaxWeightedSumUniformAtZeroAlpha) {
  Var t1 = MakeConstant(Matrix::FromRows({{2.0}}));
  Var t2 = MakeConstant(Matrix::FromRows({{4.0}}));
  Var alpha = MakeParam(Matrix(1, 2));  // zeros -> uniform softmax
  Var out = SoftmaxWeightedSum({t1, t2}, alpha);
  EXPECT_NEAR(out->value(0, 0), 3.0, 1e-12);
}

TEST(OpsForwardTest, MaskedCrossEntropyMatchesManual) {
  // Single masked row with known softmax.
  Var logits = MakeParam(Matrix::FromRows({{0.0, 0.0}, {1.0, 3.0}}));
  Var loss = MaskedCrossEntropy(logits, {0, 1}, {1});
  const double p1 = std::exp(3.0) / (std::exp(1.0) + std::exp(3.0));
  EXPECT_NEAR(loss->value(0, 0), -std::log(p1), 1e-12);
}

TEST(OpsForwardTest, BceWithLogitsMatchesManual) {
  Var logits = MakeParam(Matrix::FromRows({{0.0}, {2.0}}));
  Var loss = BceWithLogits(logits, {1.0, 0.0});
  const double expected =
      (-std::log(0.5) - std::log(1.0 - 1.0 / (1.0 + std::exp(-2.0)))) / 2.0;
  EXPECT_NEAR(loss->value(0, 0), expected, 1e-12);
}

TEST(BackwardTest, RootMustBeScalar) {
  Var p = MakeParam(Matrix::FromRows({{1, 2}}));
  EXPECT_DEATH(Backward(Add(p, p)), "scalar");
}

}  // namespace
}  // namespace ahg
