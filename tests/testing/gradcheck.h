// Finite-difference gradient checking shared by the autodiff tests.
//
// `make_loss` must rebuild the computation graph from the *current* values
// of `params` on every call and return a scalar Var. Any stochastic op
// inside (e.g. Dropout) must draw from a freshly re-seeded Rng so repeated
// forwards are identical.
#ifndef AUTOHENS_TESTS_TESTING_GRADCHECK_H_
#define AUTOHENS_TESTS_TESTING_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include "autodiff/variable.h"
#include "gtest/gtest.h"

namespace ahg::testing {

inline void ExpectGradientsMatch(const std::function<Var()>& make_loss,
                                 const std::vector<Var>& params,
                                 double eps = 1e-6, double tol = 1e-5) {
  // Analytic gradients.
  for (const Var& p : params) {
    p->grad = Matrix();
    p->EnsureGrad();
  }
  Var loss = make_loss();
  Backward(loss);
  std::vector<Matrix> analytic;
  analytic.reserve(params.size());
  for (const Var& p : params) analytic.push_back(p->grad);

  // Central differences, every entry.
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Var p = params[pi];
    for (int64_t i = 0; i < p->value.size(); ++i) {
      const double saved = p->value.data()[i];
      p->value.data()[i] = saved + eps;
      const double up = make_loss()->value(0, 0);
      p->value.data()[i] = saved - eps;
      const double down = make_loss()->value(0, 0);
      p->value.data()[i] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      const double exact = analytic[pi].data()[i];
      const double scale = std::max({1.0, std::abs(numeric), std::abs(exact)});
      EXPECT_NEAR(exact, numeric, tol * scale)
          << "param " << pi << " entry " << i;
    }
  }
}

}  // namespace ahg::testing

#endif  // AUTOHENS_TESTS_TESTING_GRADCHECK_H_
