// Fabric conformance suite (ISSUE 6 tentpole proof). Covers:
//  - StableHash64 / ConsistentHashRing: determinism across rebuilds and
//    threads, per-shard balance, and the consistency property (growing an
//    N-shard ring remaps ~K/(N+1) keys, all of them onto the new shard);
//  - bitwise conformance: a sharded fabric answers every query bitwise
//    identical to one InferenceEngine, for {1,2,4} shards x {1,2,4}
//    batcher threads over six model families;
//  - fleet rollout atomicity: mid-traffic Rollout never serves a torn
//    version (every answer matches its served_version's reference rows
//    exactly) and is all-or-nothing when a shard cannot serve the version;
//  - router backpressure: queue-depth gating sheds with ResourceExhausted,
//    surfaces in fabric.shed / ServeStats, and recovers after drain;
//  - shard-shared PropagationCache with tenant-scoped keys: no cross-tenant
//    collisions, eviction accounting spans tenants (ISSUE 6 satellite);
//  - dynamic-graph bridge: streamed mutations route to the owning shard
//    only, and a published snapshot serves bitwise like StreamingServer.
// The suite runs under TSan and ASan in CI.
#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fabric/fabric.h"
#include "fabric/hash_ring.h"
#include "fabric/shard.h"
#include "graph/synthetic.h"
#include "gtest/gtest.h"
#include "nn/linear.h"
#include "obs/metrics.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "serve/propagation_cache.h"

namespace ahg::fabric {
namespace {

std::string FreshDir(const std::string& name) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base ? base : "/tmp") + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Graph SmallGraph(uint64_t seed = 7, int num_nodes = 48) {
  SyntheticConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.num_classes = 3;
  cfg.feature_dim = 6;
  cfg.avg_degree = 3.0;
  cfg.seed = seed;
  return GenerateSbmGraph(cfg);
}

serve::ServableModel MakeServable(const Graph& graph, int version,
                                  ModelFamily family = ModelFamily::kGcn,
                                  uint64_t seed = 11) {
  serve::ServableModel model;
  model.version = version;
  model.num_classes = graph.num_classes();
  model.config.family = family;
  model.config.in_dim = graph.feature_dim();
  model.config.hidden_dim = 8;
  model.config.num_layers = 2;
  model.config.seed = seed;
  std::unique_ptr<GnnModel> zoo = BuildModel(model.config);
  Rng head_rng(model.config.seed ^ 0x5ca1ab1eULL);
  Linear head(zoo->params(), model.config.hidden_dim, model.num_classes,
              /*bias=*/true, &head_rng);
  model.params = zoo->params()->Snapshot();
  return model;
}

// Publishes `model` into `dir` and loads it into a fresh registry.
std::unique_ptr<serve::ModelRegistry> RegistryWith(
    const std::string& dir, const std::vector<serve::ServableModel>& models) {
  for (const serve::ServableModel& m : models) {
    AHG_CHECK(serve::ModelRegistry::Publish(dir, m.version, m.config, m.params,
                                            m.num_classes)
                  .ok());
  }
  auto registry = std::make_unique<serve::ModelRegistry>(dir);
  AHG_CHECK(registry->Refresh().ok());
  return registry;
}

// One answered query's probability vector vs a reference matrix row,
// compared bitwise (the conformance contract is exact, not approximate).
bool RowBitwiseEqual(const std::vector<double>& probs, const Matrix& ref,
                     int row) {
  if (static_cast<int>(probs.size()) != ref.cols()) return false;
  return std::memcmp(probs.data(), ref.Row(row),
                     probs.size() * sizeof(double)) == 0;
}

// Batcher settings that keep tests deterministic on loaded single-core CI
// machines: no deadlines, small batches so multi-batch paths are exercised.
serve::BatcherOptions TestBatcher(int num_threads) {
  serve::BatcherOptions batcher;
  batcher.max_batch_size = 8;
  batcher.deadline_ms = 0.0;
  batcher.num_threads = num_threads;
  batcher.max_queue_delay_ms = 2.0;
  return batcher;
}

TEST(StableHashTest, DeterministicAndWellDispersed) {
  EXPECT_EQ(StableHash64(std::string("fabric")),
            StableHash64("fabric", 6));
  EXPECT_NE(StableHash64(std::string("fabric")),
            StableHash64(std::string("fabrio")));
  std::set<uint64_t> seen;
  for (int64_t k = 0; k < 4096; ++k) {
    EXPECT_EQ(StableHash64(k), StableHash64(k));
    seen.insert(StableHash64(k));
  }
  EXPECT_EQ(seen.size(), 4096u);  // no collisions over a small dense range
}

TEST(HashRingTest, AssignmentIsBalancedAcrossShards) {
  constexpr int kShards = 4;
  constexpr int kKeys = 40000;
  ConsistentHashRing ring(/*virtual_nodes=*/128);
  for (int s = 0; s < kShards; ++s) ring.AddShard(s);
  std::vector<int> counts(kShards, 0);
  for (int k = 0; k < kKeys; ++k) ++counts[ring.ShardForNode(k)];
  for (int s = 0; s < kShards; ++s) {
    // 128 virtual nodes keep every shard within a factor of two of K/N.
    EXPECT_GT(counts[s], kKeys / (2 * kShards)) << "shard " << s;
    EXPECT_LT(counts[s], kKeys / kShards * 2) << "shard " << s;
  }
}

TEST(HashRingTest, AddingShardRemapsBoundedFractionOntoNewShardOnly) {
  constexpr int kShards = 4;
  constexpr int kKeys = 40000;
  ConsistentHashRing ring(/*virtual_nodes=*/128);
  for (int s = 0; s < kShards; ++s) ring.AddShard(s);
  std::vector<int> before(kKeys);
  for (int k = 0; k < kKeys; ++k) before[k] = ring.ShardForNode(k);

  ring.AddShard(kShards);  // grow N -> N+1
  int moved = 0;
  for (int k = 0; k < kKeys; ++k) {
    const int after = ring.ShardForNode(k);
    if (after != before[k]) {
      ++moved;
      // Consistency: a key either keeps its shard or falls to the NEW one;
      // no key ever migrates between pre-existing shards.
      EXPECT_EQ(after, kShards) << "key " << k;
    }
  }
  // Expectation is K/(N+1) = 8000; assert the ~K/N ballpark with slack
  // (2x) rather than a naive-rehash blowup (which would move ~4/5 of keys).
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, 2 * kKeys / (kShards + 1));
}

TEST(HashRingTest, RemovingShardOnlyMovesItsOwnKeys) {
  constexpr int kKeys = 20000;
  ConsistentHashRing ring(/*virtual_nodes=*/128);
  for (int s = 0; s < 4; ++s) ring.AddShard(s);
  std::vector<int> before(kKeys);
  for (int k = 0; k < kKeys; ++k) before[k] = ring.ShardForNode(k);
  ASSERT_TRUE(ring.RemoveShard(2));
  EXPECT_FALSE(ring.RemoveShard(2));
  for (int k = 0; k < kKeys; ++k) {
    if (before[k] != 2) {
      EXPECT_EQ(ring.ShardForNode(k), before[k]) << "key " << k;
    } else {
      EXPECT_NE(ring.ShardForNode(k), 2) << "key " << k;
    }
  }
}

TEST(HashRingTest, RoutingIsDeterministicAcrossRebuildsAndThreads) {
  constexpr int kKeys = 10000;
  auto build = [] {
    ConsistentHashRing ring(/*virtual_nodes=*/64);
    for (int s = 0; s < 3; ++s) ring.AddShard(s);
    return ring;
  };
  const ConsistentHashRing a = build();
  const ConsistentHashRing b = build();
  std::vector<int> serial(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    serial[k] = a.ShardForNode(k);
    EXPECT_EQ(b.ShardForNode(k), serial[k]);
    EXPECT_EQ(b.ShardForKey("tenant-" + std::to_string(k)),
              a.ShardForKey("tenant-" + std::to_string(k)));
  }
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&a, &serial, &mismatches, t] {
      for (int k = t; k < kKeys; k += kThreads) {
        if (a.ShardForNode(k) != serial[k]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// --- Bitwise conformance: sharded fabric == single engine -----------------

TEST(FabricConformanceTest, BitwiseIdenticalToSingleEngineAcrossConfigs) {
  const ModelFamily kFamilies[] = {ModelFamily::kGcn,  ModelFamily::kSageMean,
                                   ModelFamily::kGat,  ModelFamily::kSgc,
                                   ModelFamily::kAppnp, ModelFamily::kGin};
  Graph graph = SmallGraph(21, /*num_nodes=*/48);
  int family_index = 0;
  for (ModelFamily family : kFamilies) {
    SCOPED_TRACE("family " + std::to_string(static_cast<int>(family)));
    serve::ServableModel model =
        MakeServable(graph, 1, family, /*seed=*/31 + family_index);
    auto registry = RegistryWith(
        FreshDir("fabric_conf_" + std::to_string(family_index)), {model});
    ++family_index;

    // Reference: one engine, no sharding, no batching.
    serve::InferenceEngine reference(&graph, serve::EngineOptions{});
    auto ref_or = reference.PredictAll(*registry->Active());
    ASSERT_TRUE(ref_or.ok()) << ref_or.status().ToString();
    const Matrix& ref = ref_or.value();

    for (int shards : {1, 2, 4}) {
      for (int threads : {1, 2, 4}) {
        SCOPED_TRACE("shards " + std::to_string(shards) + " threads " +
                     std::to_string(threads));
        FabricOptions options;
        options.num_shards = shards;
        options.batcher = TestBatcher(threads);
        ServingFabric fabric(options);
        ASSERT_TRUE(fabric.ServeGraph(&graph, registry.get()).ok());

        std::vector<std::future<serve::QueryResult>> futures;
        futures.reserve(static_cast<size_t>(graph.num_nodes()));
        for (int node = 0; node < graph.num_nodes(); ++node) {
          futures.push_back(fabric.Query(node));
        }
        fabric.Flush();
        for (int node = 0; node < graph.num_nodes(); ++node) {
          serve::QueryResult result = futures[node].get();
          ASSERT_TRUE(result.status.ok()) << result.status.ToString();
          EXPECT_EQ(result.served_version, 1);
          EXPECT_TRUE(RowBitwiseEqual(result.probs, ref, node))
              << "node " << node;
        }
      }
    }
  }
}

// --- Fleet rollout --------------------------------------------------------

TEST(FabricTest, MidTrafficRolloutNeverServesTornVersion) {
  Graph graph = SmallGraph(33);
  serve::ServableModel v1 = MakeServable(graph, 1, ModelFamily::kGcn, 41);
  serve::ServableModel v2 = MakeServable(graph, 2, ModelFamily::kGcn, 42);
  auto registry = RegistryWith(FreshDir("fabric_rollout"), {v1, v2});

  serve::InferenceEngine reference(&graph, serve::EngineOptions{});
  auto ref1 = reference.PredictAll(*registry->Version(1));
  auto ref2 = reference.PredictAll(*registry->Version(2));
  ASSERT_TRUE(ref1.ok() && ref2.ok());

  FabricOptions options;
  options.num_shards = 2;
  options.batcher = TestBatcher(2);
  ServingFabric fabric(options);
  ASSERT_TRUE(fabric.ServeGraph(&graph, registry.get()).ok());
  // Pin v1 explicitly (Active() would be the highest published version).
  ASSERT_TRUE(fabric.Rollout(1).ok());
  EXPECT_EQ(fabric.pinned_version(), 1);

  const int64_t rollouts_before =
      obs::MetricsRegistry::Global().GetCounter("fabric.rollouts")->Value();

  constexpr int kClients = 2;
  constexpr int kQueriesPerClient = 120;
  std::vector<std::vector<std::pair<int, serve::QueryResult>>> answers(
      kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&fabric, &answers, &graph, c] {
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const int node = (c * kQueriesPerClient + i * 7) % graph.num_nodes();
        answers[c].emplace_back(node, fabric.Query(node).get());
      }
    });
  }
  // Flip the fleet while the clients hammer it.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(fabric.Rollout(2).ok());
  EXPECT_EQ(fabric.pinned_version(), 2);
  for (auto& client : clients) client.join();

  for (int c = 0; c < kClients; ++c) {
    bool seen_v2 = false;
    for (const auto& [node, result] : answers[c]) {
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      // Torn-version check: the answer must be bitwise-exactly the output
      // of the single version it claims — old rows before the flip, new
      // rows after, never a mixture and never a downgrade.
      if (result.served_version == 1) {
        EXPECT_FALSE(seen_v2) << "v1 answer after a v2 answer (client " << c
                              << ")";
        EXPECT_TRUE(RowBitwiseEqual(result.probs, ref1.value(), node));
      } else {
        ASSERT_EQ(result.served_version, 2);
        seen_v2 = true;
        EXPECT_TRUE(RowBitwiseEqual(result.probs, ref2.value(), node));
      }
    }
  }

  // After Rollout returned, every new answer is v2 on every shard.
  for (int node = 0; node < graph.num_nodes(); ++node) {
    serve::QueryResult result = fabric.Query(node).get();
    ASSERT_TRUE(result.status.ok());
    EXPECT_EQ(result.served_version, 2);
    EXPECT_TRUE(RowBitwiseEqual(result.probs, ref2.value(), node));
  }
  EXPECT_EQ(
      obs::MetricsRegistry::Global().GetCounter("fabric.rollouts")->Value(),
      rollouts_before + 1);
}

TEST(FabricTest, RolloutIsAllOrNothingWhenAShardCannotServe) {
  Graph graph = SmallGraph(35);
  serve::ServableModel v1 = MakeServable(graph, 1);
  auto registry = RegistryWith(FreshDir("fabric_rollout_abort"), {v1});

  FabricOptions options;
  options.num_shards = 2;
  options.batcher = TestBatcher(1);
  ServingFabric fabric(options);
  ASSERT_TRUE(fabric.ServeGraph(&graph, registry.get()).ok());
  ASSERT_TRUE(fabric.Rollout(1).ok());

  Status missing = fabric.Rollout(99);  // never published
  EXPECT_EQ(missing.code(), Status::Code::kNotFound);
  EXPECT_EQ(fabric.pinned_version(), 1);  // prepare failed, no flip anywhere
  EXPECT_EQ(fabric.Rollout(0).code(), Status::Code::kInvalidArgument);

  serve::QueryResult result = fabric.Query(0).get();
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.served_version, 1);
}

// --- Router backpressure --------------------------------------------------

TEST(FabricTest, BackpressureShedsWithResourceExhaustedAndRecovers) {
  Graph graph = SmallGraph(37);
  serve::ServableModel v1 = MakeServable(graph, 1);
  auto registry = RegistryWith(FreshDir("fabric_backpressure"), {v1});

  FabricOptions options;
  options.num_shards = 1;
  options.router_queue_limit = 4;
  // Park admitted requests: no flusher, no deadline, batch cut far away —
  // the queue only moves on an explicit Flush, so depths are deterministic.
  options.batcher.max_batch_size = 1024;
  options.batcher.queue_limit = 1024;
  options.batcher.deadline_ms = 0.0;
  options.batcher.max_queue_delay_ms = 0.0;
  options.batcher.num_threads = 1;
  ServingFabric fabric(options);
  ASSERT_TRUE(fabric.ServeGraph(&graph, registry.get()).ok());

  obs::Counter* shed = obs::MetricsRegistry::Global().GetCounter("fabric.shed");
  obs::Counter* routed =
      obs::MetricsRegistry::Global().GetCounter("fabric.routed");
  const int64_t shed_before = shed->Value();
  const int64_t routed_before = routed->Value();
  const int64_t rejected_before = fabric.shard(0).stats().Snapshot().rejected;

  std::vector<std::future<serve::QueryResult>> admitted;
  for (int i = 0; i < options.router_queue_limit; ++i) {
    admitted.push_back(fabric.Query(i));
  }
  EXPECT_EQ(fabric.shard(0).queue_depth(), options.router_queue_limit);

  // At the limit: the router sheds without touching the batcher queue.
  for (int i = 0; i < 3; ++i) {
    serve::QueryResult over = fabric.Query(40 + i).get();
    EXPECT_EQ(over.status.code(), Status::Code::kResourceExhausted)
        << over.status.ToString();
  }
  EXPECT_EQ(shed->Value(), shed_before + 3);
  EXPECT_EQ(routed->Value(), routed_before + options.router_queue_limit);
  EXPECT_EQ(fabric.shard(0).stats().Snapshot().rejected, rejected_before + 3);
  EXPECT_EQ(fabric.shard(0).queue_depth(), options.router_queue_limit);

  // Recovery: drain the shard and the router admits again.
  fabric.Drain();
  for (auto& future : admitted) {
    EXPECT_TRUE(future.get().status.ok());
  }
  EXPECT_EQ(fabric.shard(0).queue_depth(), 0);
  std::future<serve::QueryResult> after_future = fabric.Query(5);
  fabric.Drain();  // this batcher only moves on Flush/Drain (no flusher)
  serve::QueryResult after = after_future.get();
  EXPECT_TRUE(after.status.ok()) << after.status.ToString();
  EXPECT_EQ(shed->Value(), shed_before + 3);
}

// --- Multi-tenant mode ----------------------------------------------------

TEST(FabricTest, MultiTenantQueriesRouteToPinnedShardAndStayIsolated) {
  Graph alpha_graph = SmallGraph(51);
  Graph beta_graph = SmallGraph(52, /*num_nodes=*/40);
  serve::ServableModel alpha_model =
      MakeServable(alpha_graph, 1, ModelFamily::kGcn, 61);
  serve::ServableModel beta_model =
      MakeServable(beta_graph, 1, ModelFamily::kSgc, 62);
  auto alpha_registry =
      RegistryWith(FreshDir("fabric_mt_alpha"), {alpha_model});
  auto beta_registry = RegistryWith(FreshDir("fabric_mt_beta"), {beta_model});

  serve::InferenceEngine alpha_ref(&alpha_graph, serve::EngineOptions{});
  serve::InferenceEngine beta_ref(&beta_graph, serve::EngineOptions{});
  auto alpha_probs = alpha_ref.PredictAll(*alpha_registry->Active());
  auto beta_probs = beta_ref.PredictAll(*beta_registry->Active());
  ASSERT_TRUE(alpha_probs.ok() && beta_probs.ok());

  FabricOptions options;
  options.num_shards = 2;
  options.batcher = TestBatcher(1);
  ServingFabric fabric(options);
  ASSERT_TRUE(fabric.AddTenant("alpha", &alpha_graph, alpha_registry.get())
                  .ok());
  ASSERT_TRUE(
      fabric.AddTenant("beta", &beta_graph, beta_registry.get()).ok());
  // Tenants live exactly on their ring-assigned shard.
  EXPECT_TRUE(
      fabric.shard(fabric.ShardOfTenant("alpha")).HasTenant("alpha"));
  EXPECT_TRUE(fabric.shard(fabric.ShardOfTenant("beta")).HasTenant("beta"));

  for (int node = 0; node < alpha_graph.num_nodes(); ++node) {
    serve::QueryResult result = fabric.QueryTenant("alpha", node).get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_TRUE(RowBitwiseEqual(result.probs, alpha_probs.value(), node));
  }
  for (int node = 0; node < beta_graph.num_nodes(); ++node) {
    serve::QueryResult result = fabric.QueryTenant("beta", node).get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_TRUE(RowBitwiseEqual(result.probs, beta_probs.value(), node));
  }

  EXPECT_EQ(fabric.QueryTenant("nobody", 0).get().status.code(),
            Status::Code::kNotFound);
  // Mode and naming guards.
  EXPECT_EQ(fabric.ServeGraph(&alpha_graph, alpha_registry.get()).code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(
      fabric.AddTenant("default", &alpha_graph, alpha_registry.get()).code(),
      Status::Code::kInvalidArgument);
  EXPECT_EQ(
      fabric.AddTenant("bad/name", &alpha_graph, alpha_registry.get()).code(),
      Status::Code::kInvalidArgument);
  EXPECT_EQ(
      fabric.AddTenant("alpha", &alpha_graph, alpha_registry.get()).code(),
      Status::Code::kInvalidArgument);
}

// --- Shard-shared cache with tenant-scoped keys (ISSUE 6 satellite) -------

TEST(PropagationKeyTest, TenantScopeKeepsKeysDistinct) {
  EXPECT_EQ(serve::GraphId("", 3), serve::GraphId(3));
  EXPECT_EQ(serve::GraphId("alpha", 3), "alpha:" + serve::GraphId(3));
  EXPECT_NE(serve::GraphId("alpha", 3), serve::GraphId("beta", 3));
  EXPECT_NE(serve::PropagationKey(serve::GraphId("alpha", 0), 1),
            serve::PropagationKey(serve::GraphId("beta", 0), 1));
}

TEST(EngineShardTest, SharedCacheServesEachTenantItsOwnProduct) {
  // Two tenants with identical (generation=0, version=1) coordinates but
  // different graphs/weights: the exact collision the tenant scope exists
  // to prevent — unscoped keys would hand one tenant the other's H^(L).
  Graph alpha_graph = SmallGraph(71);
  Graph beta_graph = SmallGraph(72);
  serve::ServableModel alpha_model =
      MakeServable(alpha_graph, 1, ModelFamily::kGcn, 81);
  serve::ServableModel beta_model =
      MakeServable(beta_graph, 1, ModelFamily::kGcn, 82);
  auto alpha_registry =
      RegistryWith(FreshDir("fabric_scope_alpha"), {alpha_model});
  auto beta_registry =
      RegistryWith(FreshDir("fabric_scope_beta"), {beta_model});

  EngineShard shard(/*shard_id=*/0, /*cache_byte_budget=*/0);
  ASSERT_TRUE(shard
                  .AddTenant("alpha", &alpha_graph, alpha_registry.get(),
                             serve::EngineOptions{}, TestBatcher(1))
                  .ok());
  ASSERT_TRUE(shard
                  .AddTenant("beta", &beta_graph, beta_registry.get(),
                             serve::EngineOptions{}, TestBatcher(1))
                  .ok());

  serve::InferenceEngine alpha_ref(&alpha_graph, serve::EngineOptions{});
  serve::InferenceEngine beta_ref(&beta_graph, serve::EngineOptions{});
  auto alpha_expected = alpha_ref.PredictAll(alpha_model);
  auto beta_expected = beta_ref.PredictAll(beta_model);
  ASSERT_TRUE(alpha_expected.ok() && beta_expected.ok());

  auto alpha_got =
      shard.engine("alpha")->PredictNodes(alpha_model, {0, 1, 2});
  auto beta_got = shard.engine("beta")->PredictNodes(beta_model, {0, 1, 2});
  ASSERT_TRUE(alpha_got.ok() && beta_got.ok());
  for (int row = 0; row < 3; ++row) {
    EXPECT_EQ(std::memcmp(alpha_got.value().Row(row),
                          alpha_expected.value().Row(row),
                          sizeof(double) * alpha_expected.value().cols()),
              0);
    EXPECT_EQ(std::memcmp(beta_got.value().Row(row),
                          beta_expected.value().Row(row),
                          sizeof(double) * beta_expected.value().cols()),
              0);
  }
  // One shared cache, one scoped entry per tenant — not one collided entry.
  EXPECT_EQ(shard.cache().num_entries(), 2);
  EXPECT_EQ(&shard.engine("alpha")->cache(), &shard.engine("beta")->cache());
}

TEST(EngineShardTest, EvictionAccountingSpansTenants) {
  Graph alpha_graph = SmallGraph(73);
  Graph beta_graph = SmallGraph(74);
  serve::ServableModel alpha_model = MakeServable(alpha_graph, 1);
  serve::ServableModel beta_model = MakeServable(beta_graph, 1);
  auto alpha_registry =
      RegistryWith(FreshDir("fabric_evict_alpha"), {alpha_model});
  auto beta_registry =
      RegistryWith(FreshDir("fabric_evict_beta"), {beta_model});

  // H^(L) per tenant is 48 x 8 doubles = 3072 bytes; budget fits one.
  EngineShard shard(/*shard_id=*/0, /*cache_byte_budget=*/4000);
  ASSERT_TRUE(shard
                  .AddTenant("alpha", &alpha_graph, alpha_registry.get(),
                             serve::EngineOptions{}, TestBatcher(1))
                  .ok());
  ASSERT_TRUE(shard
                  .AddTenant("beta", &beta_graph, beta_registry.get(),
                             serve::EngineOptions{}, TestBatcher(1))
                  .ok());

  ASSERT_TRUE(shard.engine("alpha")->PredictNodes(alpha_model, {0}).ok());
  EXPECT_EQ(shard.cache().num_entries(), 1);
  EXPECT_EQ(shard.cache().evictions(), 0);

  // Beta's product displaces alpha's under the shared byte budget.
  ASSERT_TRUE(shard.engine("beta")->PredictNodes(beta_model, {0}).ok());
  EXPECT_EQ(shard.cache().num_entries(), 1);
  EXPECT_EQ(shard.cache().evictions(), 1);
  EXPECT_LE(shard.cache().current_bytes(), shard.cache().byte_budget());

  // Alpha is cold again (its entry was the victim), beta is warm.
  const int64_t misses_before = shard.cache().misses();
  ASSERT_TRUE(shard.engine("beta")->PredictNodes(beta_model, {1}).ok());
  EXPECT_EQ(shard.cache().misses(), misses_before);  // hit
  ASSERT_TRUE(shard.engine("alpha")->PredictNodes(alpha_model, {1}).ok());
  EXPECT_EQ(shard.cache().misses(), misses_before + 1);  // recompute
  EXPECT_EQ(shard.cache().evictions(), 2);
}

// --- Dynamic-graph bridge -------------------------------------------------

TEST(FabricTest, MutationsRouteToOwningShardOnly) {
  Graph alpha_graph = SmallGraph(91);
  Graph beta_graph = SmallGraph(92);
  serve::ServableModel alpha_model =
      MakeServable(alpha_graph, 1, ModelFamily::kGcn, 93);
  serve::ServableModel beta_model =
      MakeServable(beta_graph, 1, ModelFamily::kGcn, 94);
  auto alpha_registry =
      RegistryWith(FreshDir("fabric_dyn_alpha"), {alpha_model});
  auto beta_registry = RegistryWith(FreshDir("fabric_dyn_beta"), {beta_model});

  FabricOptions options;
  options.num_shards = 4;
  options.batcher = TestBatcher(1);
  ServingFabric fabric(options);
  ASSERT_TRUE(fabric.AddTenant("alpha", &alpha_graph, alpha_registry.get())
                  .ok());
  ASSERT_TRUE(
      fabric.AddTenant("beta", &beta_graph, beta_registry.get()).ok());

  serve::InferenceEngine beta_ref(&beta_graph, serve::EngineOptions{});
  auto beta_before = beta_ref.PredictAll(*beta_registry->Active());
  ASSERT_TRUE(beta_before.ok());

  auto stream_or = dyn::StreamingServer::Create(alpha_graph, alpha_model);
  ASSERT_TRUE(stream_or.ok()) << stream_or.status().ToString();
  dyn::StreamingServer& stream = *stream_or.value();
  ASSERT_TRUE(fabric.AttachStream("alpha", &stream).ok());

  // Mutations for a tenant without a stream are refused, not misrouted.
  EXPECT_EQ(
      fabric.SubmitMutation("beta", dyn::Mutation::UpdateFeatures(0, {}))
          .status()
          .code(),
      Status::Code::kNotFound);
  EXPECT_EQ(fabric.PublishStream("beta").code(), Status::Code::kNotFound);

  // Streamed edits land in alpha's stream on alpha's shard.
  std::vector<double> features(
      static_cast<size_t>(alpha_graph.feature_dim()), 0.25);
  auto seq0 =
      fabric.SubmitMutation("alpha", dyn::Mutation::UpdateFeatures(3, features));
  auto seq1 =
      fabric.SubmitMutation("alpha", dyn::Mutation::UpdateFeatures(7, features));
  ASSERT_TRUE(seq0.ok() && seq1.ok());
  EXPECT_EQ(seq0.value() + 1, seq1.value());
  EXPECT_EQ(stream.pending(), 2u);

  ASSERT_TRUE(fabric.PublishStream("alpha").ok());
  serve::InferenceEngine* alpha_engine =
      fabric.shard(fabric.ShardOfTenant("alpha")).engine("alpha");
  ASSERT_NE(alpha_engine, nullptr);
  EXPECT_EQ(alpha_engine->graph_generation(), stream.version() + 1);

  // Post-publish answers match the streaming path bitwise...
  for (int node : {0, 3, 7, 11}) {
    serve::QueryResult result = fabric.QueryTenant("alpha", node).get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    auto expected = stream.PredictNodes({node});
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(RowBitwiseEqual(result.probs, expected.value(), 0));
  }
  // ...and the other tenant is untouched by the publish.
  for (int node : {0, 5, 9}) {
    serve::QueryResult result = fabric.QueryTenant("beta", node).get();
    ASSERT_TRUE(result.status.ok());
    EXPECT_TRUE(RowBitwiseEqual(result.probs, beta_before.value(), node));
  }
}

}  // namespace
}  // namespace ahg::fabric
