#include "io/autograph_format.h"

#include <cstdlib>
#include <fstream>

#include "graph/split.h"
#include "graph/synthetic.h"
#include "gtest/gtest.h"

namespace ahg {
namespace {

std::string TempDir(const std::string& name) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base ? base : "/tmp") + "/" + name;
  return dir;
}

TEST(AutographFormatTest, RoundTripPreservesGraph) {
  SyntheticConfig cfg;
  cfg.num_nodes = 80;
  cfg.num_classes = 3;
  cfg.feature_dim = 4;
  cfg.avg_degree = 3.0;
  cfg.weighted = true;
  cfg.seed = 1;
  Graph g = GenerateSbmGraph(cfg);
  Rng rng(2);
  DataSplit split = RandomSplit(g, 0.5, 0.0, &rng);

  const std::string dir = TempDir("autograph_roundtrip");
  ASSERT_TRUE(WriteAutographDataset(dir, g, split.train, split.test, 300.0)
                  .ok());
  auto read = ReadAutographDataset(dir);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  const AutographDataset& ds = read.value();

  EXPECT_EQ(ds.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(ds.graph.num_edges(), g.num_edges());
  EXPECT_EQ(ds.graph.num_classes(), g.num_classes());
  EXPECT_EQ(ds.time_budget_seconds, 300.0);
  EXPECT_EQ(ds.train_nodes, split.train);
  EXPECT_EQ(ds.test_nodes, split.test);
  // Train labels survive; test labels are withheld.
  for (int node : split.train) {
    EXPECT_EQ(ds.graph.labels()[node], g.labels()[node]);
  }
  for (int node : split.test) {
    EXPECT_EQ(ds.graph.labels()[node], -1);
  }
  // Features match to printed precision.
  EXPECT_TRUE(AllClose(ds.graph.features(), g.features(), 1e-4));
}

TEST(AutographFormatTest, MissingDirectoryIsNotFound) {
  auto read = ReadAutographDataset("/definitely/not/here");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), Status::Code::kNotFound);
}

TEST(AutographFormatTest, MalformedEdgeRowRejected) {
  const std::string dir = TempDir("autograph_malformed");
  Graph g = Graph::Create(2, {{0, 1, 1.0}}, false,
                          Matrix::Constant(2, 2, 1.0), {0, 1}, 2);
  ASSERT_TRUE(WriteAutographDataset(dir, g, {0}, {1}, 60.0).ok());
  std::ofstream bad(dir + "/edge.tsv");
  bad << "0\t1\n";  // missing weight column
  bad.close();
  auto read = ReadAutographDataset(dir);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), Status::Code::kInvalidArgument);
}

TEST(AutographFormatTest, OutOfRangeEdgeRejected) {
  const std::string dir = TempDir("autograph_range");
  Graph g = Graph::Create(2, {{0, 1, 1.0}}, false,
                          Matrix::Constant(2, 2, 1.0), {0, 1}, 2);
  ASSERT_TRUE(WriteAutographDataset(dir, g, {0}, {1}, 60.0).ok());
  std::ofstream bad(dir + "/edge.tsv");
  bad << "0\t9\t1.0\n";
  bad.close();
  auto read = ReadAutographDataset(dir);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), Status::Code::kInvalidArgument);
}

TEST(AutographFormatTest, MissingConfigKeyRejected) {
  const std::string dir = TempDir("autograph_noclass");
  Graph g = Graph::Create(2, {{0, 1, 1.0}}, false,
                          Matrix::Constant(2, 2, 1.0), {0, 1}, 2);
  ASSERT_TRUE(WriteAutographDataset(dir, g, {0}, {1}, 60.0).ok());
  std::ofstream bad(dir + "/config.yml");
  bad << "time_budget: 60\n";  // n_class missing
  bad.close();
  auto read = ReadAutographDataset(dir);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), Status::Code::kInvalidArgument);
}

TEST(AutographFormatTest, DirectedFlagRoundTrips) {
  const std::string dir = TempDir("autograph_directed");
  Graph g = Graph::Create(3, {{0, 1, 1.0}, {1, 2, 1.0}}, /*directed=*/true,
                          Matrix::Constant(3, 2, 1.0), {0, 1, 0}, 2);
  ASSERT_TRUE(WriteAutographDataset(dir, g, {0, 1}, {2}, 60.0).ok());
  auto read = ReadAutographDataset(dir);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().graph.directed());
}

}  // namespace
}  // namespace ahg
