#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include "graph/split.h"
#include "graph/synthetic.h"
#include "gtest/gtest.h"
#include "io/autograph_format.h"
#include "io/model_store.h"

namespace ahg {
namespace {

std::string TempDir(const std::string& name) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base ? base : "/tmp") + "/" + name;
  return dir;
}

TEST(AutographFormatTest, RoundTripPreservesGraph) {
  SyntheticConfig cfg;
  cfg.num_nodes = 80;
  cfg.num_classes = 3;
  cfg.feature_dim = 4;
  cfg.avg_degree = 3.0;
  cfg.weighted = true;
  cfg.seed = 1;
  Graph g = GenerateSbmGraph(cfg);
  Rng rng(2);
  DataSplit split = RandomSplit(g, 0.5, 0.0, &rng);

  const std::string dir = TempDir("autograph_roundtrip");
  ASSERT_TRUE(WriteAutographDataset(dir, g, split.train, split.test, 300.0)
                  .ok());
  auto read = ReadAutographDataset(dir);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  const AutographDataset& ds = read.value();

  EXPECT_EQ(ds.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(ds.graph.num_edges(), g.num_edges());
  EXPECT_EQ(ds.graph.num_classes(), g.num_classes());
  EXPECT_EQ(ds.time_budget_seconds, 300.0);
  EXPECT_EQ(ds.train_nodes, split.train);
  EXPECT_EQ(ds.test_nodes, split.test);
  // Train labels survive; test labels are withheld.
  for (int node : split.train) {
    EXPECT_EQ(ds.graph.labels()[node], g.labels()[node]);
  }
  for (int node : split.test) {
    EXPECT_EQ(ds.graph.labels()[node], -1);
  }
  // Features match to printed precision.
  EXPECT_TRUE(AllClose(ds.graph.features(), g.features(), 1e-4));
}

TEST(AutographFormatTest, MissingDirectoryIsNotFound) {
  auto read = ReadAutographDataset("/definitely/not/here");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), Status::Code::kNotFound);
}

TEST(AutographFormatTest, MalformedEdgeRowRejected) {
  const std::string dir = TempDir("autograph_malformed");
  Graph g = Graph::Create(2, {{0, 1, 1.0}}, false,
                          Matrix::Constant(2, 2, 1.0), {0, 1}, 2);
  ASSERT_TRUE(WriteAutographDataset(dir, g, {0}, {1}, 60.0).ok());
  std::ofstream bad(dir + "/edge.tsv");
  bad << "0\t1\n";  // missing weight column
  bad.close();
  auto read = ReadAutographDataset(dir);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), Status::Code::kInvalidArgument);
}

TEST(AutographFormatTest, OutOfRangeEdgeRejected) {
  const std::string dir = TempDir("autograph_range");
  Graph g = Graph::Create(2, {{0, 1, 1.0}}, false,
                          Matrix::Constant(2, 2, 1.0), {0, 1}, 2);
  ASSERT_TRUE(WriteAutographDataset(dir, g, {0}, {1}, 60.0).ok());
  std::ofstream bad(dir + "/edge.tsv");
  bad << "0\t9\t1.0\n";
  bad.close();
  auto read = ReadAutographDataset(dir);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), Status::Code::kInvalidArgument);
}

TEST(AutographFormatTest, MissingConfigKeyRejected) {
  const std::string dir = TempDir("autograph_noclass");
  Graph g = Graph::Create(2, {{0, 1, 1.0}}, false,
                          Matrix::Constant(2, 2, 1.0), {0, 1}, 2);
  ASSERT_TRUE(WriteAutographDataset(dir, g, {0}, {1}, 60.0).ok());
  std::ofstream bad(dir + "/config.yml");
  bad << "time_budget: 60\n";  // n_class missing
  bad.close();
  auto read = ReadAutographDataset(dir);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), Status::Code::kInvalidArgument);
}

// --- model_store framing hardening ---------------------------------------

std::string WriteReferenceModel(const std::string& name) {
  ModelConfig cfg;
  cfg.family = ModelFamily::kGcn;
  cfg.in_dim = 3;
  cfg.hidden_dim = 4;
  std::vector<Matrix> params;
  params.push_back(Matrix::Constant(3, 4, 0.5));
  params.push_back(Matrix::Constant(1, 4, -0.25));
  const std::string path = TempDir(name);
  EXPECT_TRUE(SaveModel(path, cfg, params).ok());
  return path;
}

std::vector<char> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open());
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::vector<char>& bytes,
                size_t count) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(count));
}

// Byte offset of the first tensor's rows field in the AHGM layout: magic(4)
// + version(4) + 4 u32 config fields + dropout f64 + heads u32 + 4 f64
// knobs + poly u32 + seed u64 + tensor count u32.
constexpr size_t kFirstTensorHeaderOffset =
    4 + 4 + 16 + 8 + 4 + 32 + 4 + 8 + 4;

TEST(ModelStoreTest, TruncatedFileAtEveryStageIsRejectedNotCrashed) {
  const std::string path = WriteReferenceModel("model_store_trunc.ahgm");
  const std::vector<char> bytes = ReadAllBytes(path);
  ASSERT_GT(bytes.size(), kFirstTensorHeaderOffset);
  // Cut inside the magic, the header, the tensor header, and the payload.
  for (size_t cut : std::vector<size_t>{2, 10, 40, kFirstTensorHeaderOffset,
                                        kFirstTensorHeaderOffset + 4,
                                        kFirstTensorHeaderOffset + 8 + 17,
                                        bytes.size() - 1}) {
    const std::string cut_path = TempDir("model_store_cut.ahgm");
    WriteBytes(cut_path, bytes, cut);
    auto loaded = LoadModel(cut_path);
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut;
    EXPECT_EQ(loaded.status().code(), Status::Code::kInvalidArgument)
        << "cut at " << cut;
  }
}

TEST(ModelStoreTest, HugeTensorDimsRejectedWithoutAllocation) {
  const std::string path = WriteReferenceModel("model_store_bomb.ahgm");
  std::vector<char> bytes = ReadAllBytes(path);
  // Claim a ~146 exabyte tensor (0xFFFFFFFF x 0xFFFFFFFF doubles). The old
  // loader multiplied in int and tried to allocate; now the caps reject it
  // before any allocation.
  const uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bytes.data() + kFirstTensorHeaderOffset, &huge, sizeof(huge));
  std::memcpy(bytes.data() + kFirstTensorHeaderOffset + 4, &huge,
              sizeof(huge));
  const std::string bomb = TempDir("model_store_bomb2.ahgm");
  WriteBytes(bomb, bytes, bytes.size());
  auto loaded = LoadModel(bomb);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kInvalidArgument);
}

TEST(ModelStoreTest, PlausibleDimsBeyondFileSizeRejectedBeforeAllocation) {
  const std::string path = WriteReferenceModel("model_store_lie.ahgm");
  std::vector<char> bytes = ReadAllBytes(path);
  // Claim 4000x4000 (128 MB payload) in a file of a few hundred bytes:
  // within the dimension caps, but the file cannot hold it.
  const uint32_t rows = 4000, cols = 4000;
  std::memcpy(bytes.data() + kFirstTensorHeaderOffset, &rows, sizeof(rows));
  std::memcpy(bytes.data() + kFirstTensorHeaderOffset + 4, &cols,
              sizeof(cols));
  const std::string lie = TempDir("model_store_lie2.ahgm");
  WriteBytes(lie, bytes, bytes.size());
  auto loaded = LoadModel(lie);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kInvalidArgument);
}

TEST(ModelStoreTest, RoundTripStillWorksAfterHardening) {
  const std::string path = WriteReferenceModel("model_store_ok.ahgm");
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().params.size(), 2u);
  EXPECT_EQ(loaded.value().params[0].rows(), 3);
  EXPECT_EQ(loaded.value().params[0].cols(), 4);
  EXPECT_DOUBLE_EQ(loaded.value().params[1](0, 0), -0.25);
}

TEST(AutographFormatTest, DirectedFlagRoundTrips) {
  const std::string dir = TempDir("autograph_directed");
  Graph g = Graph::Create(3, {{0, 1, 1.0}, {1, 2, 1.0}}, /*directed=*/true,
                          Matrix::Constant(3, 2, 1.0), {0, 1, 0}, 2);
  ASSERT_TRUE(WriteAutographDataset(dir, g, {0, 1}, {2}, 60.0).ok());
  auto read = ReadAutographDataset(dir);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().graph.directed());
}

}  // namespace
}  // namespace ahg
