// Finite-difference verification of every dense autodiff op. A named
// parameterized suite sweeps the unary ops; structured ops get dedicated
// cases.
#include <functional>
#include <string>

#include "autodiff/ops.h"
#include "gtest/gtest.h"
#include "testing/gradcheck.h"
#include "util/rng.h"

namespace ahg {
namespace {

using ::ahg::testing::ExpectGradientsMatch;

Matrix RandomMatrix(int r, int c, uint64_t seed) {
  Rng rng(seed);
  return Matrix::Gaussian(r, c, 1.0, &rng);
}

struct UnaryCase {
  std::string name;
  std::function<Var(const Var&)> op;
  bool smooth_input = false;  // shift inputs away from kinks
};

class UnaryGradTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryGradTest, MatchesFiniteDifferences) {
  const UnaryCase& tc = GetParam();
  Matrix init = RandomMatrix(3, 4, 42);
  if (tc.smooth_input) {
    // Push values away from non-differentiable points (0 for relu-family).
    for (int64_t i = 0; i < init.size(); ++i) {
      if (std::abs(init.data()[i]) < 0.05) init.data()[i] += 0.1;
    }
  }
  Var p = MakeParam(init);
  ExpectGradientsMatch([&] { return SumAll(CWiseMul(tc.op(p), tc.op(p))); },
                       {p});
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryGradTest,
    ::testing::Values(
        UnaryCase{"Relu", [](const Var& x) { return Relu(x); }, true},
        UnaryCase{"LeakyRelu",
                  [](const Var& x) { return LeakyRelu(x, 0.2); }, true},
        UnaryCase{"Elu", [](const Var& x) { return Elu(x); }, true},
        UnaryCase{"Tanh", [](const Var& x) { return Tanh(x); }, false},
        UnaryCase{"Sigmoid", [](const Var& x) { return Sigmoid(x); }, false},
        UnaryCase{"RowSoftmax",
                  [](const Var& x) { return RowSoftmaxOp(x); }, false},
        UnaryCase{"RowLogSoftmax",
                  [](const Var& x) { return RowLogSoftmaxOp(x); }, false},
        UnaryCase{"ScalarMul",
                  [](const Var& x) { return ScalarMul(x, -1.7); }, false}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) {
      return info.param.name;
    });

TEST(GradCheckTest, MatMulBothOperands) {
  Var a = MakeParam(RandomMatrix(3, 4, 1));
  Var b = MakeParam(RandomMatrix(4, 2, 2));
  ExpectGradientsMatch(
      [&] { return SumAll(CWiseMul(MatMul(a, b), MatMul(a, b))); }, {a, b});
}

TEST(GradCheckTest, AddSubCWiseMul) {
  Var a = MakeParam(RandomMatrix(2, 3, 3));
  Var b = MakeParam(RandomMatrix(2, 3, 4));
  ExpectGradientsMatch(
      [&] { return SumAll(CWiseMul(Add(a, b), Sub(a, b))); }, {a, b});
}

TEST(GradCheckTest, AddRowVector) {
  Var m = MakeParam(RandomMatrix(3, 4, 5));
  Var bias = MakeParam(RandomMatrix(1, 4, 6));
  ExpectGradientsMatch(
      [&] {
        Var y = AddRowVector(m, bias);
        return SumAll(CWiseMul(y, y));
      },
      {m, bias});
}

TEST(GradCheckTest, AddNSharedTerm) {
  Var a = MakeParam(RandomMatrix(2, 2, 7));
  Var b = MakeParam(RandomMatrix(2, 2, 8));
  ExpectGradientsMatch(
      [&] {
        Var s = AddN({a, b, a});  // a participates twice
        return SumAll(CWiseMul(s, s));
      },
      {a, b});
}

TEST(GradCheckTest, MeanOfVars) {
  Var a = MakeParam(RandomMatrix(2, 2, 9));
  Var b = MakeParam(RandomMatrix(2, 2, 10));
  Var c = MakeParam(RandomMatrix(2, 2, 11));
  ExpectGradientsMatch(
      [&] {
        Var m = MeanOfVars({a, b, c});
        return SumAll(CWiseMul(m, m));
      },
      {a, b, c});
}

TEST(GradCheckTest, DropoutWithFixedMask) {
  Var p = MakeParam(RandomMatrix(3, 3, 12));
  ExpectGradientsMatch(
      [&] {
        Rng rng(99);  // fresh identical mask on every forward
        Var y = Dropout(p, 0.4, /*training=*/true, &rng);
        return SumAll(CWiseMul(y, y));
      },
      {p});
}

TEST(GradCheckTest, ConcatCols) {
  Var a = MakeParam(RandomMatrix(3, 2, 13));
  Var b = MakeParam(RandomMatrix(3, 3, 14));
  ExpectGradientsMatch(
      [&] {
        Var y = ConcatCols({a, b});
        return SumAll(CWiseMul(y, y));
      },
      {a, b});
}

TEST(GradCheckTest, GatherRowsWithRepeats) {
  Var a = MakeParam(RandomMatrix(4, 3, 15));
  ExpectGradientsMatch(
      [&] {
        Var y = GatherRows(a, {1, 1, 3, 0});  // row 1 gathered twice
        return SumAll(CWiseMul(y, y));
      },
      {a});
}

TEST(GradCheckTest, RowDot) {
  Var a = MakeParam(RandomMatrix(4, 3, 16));
  Var b = MakeParam(RandomMatrix(4, 3, 17));
  ExpectGradientsMatch(
      [&] {
        Var y = RowDot(a, b);
        return SumAll(CWiseMul(y, y));
      },
      {a, b});
}

TEST(GradCheckTest, ScaleByEntry) {
  Var m = MakeParam(RandomMatrix(3, 3, 18));
  Var w = MakeParam(RandomMatrix(1, 4, 19));
  ExpectGradientsMatch(
      [&] {
        Var y = ScaleByEntry(m, w, 2);
        return SumAll(CWiseMul(y, y));
      },
      {m, w});
}

TEST(GradCheckTest, SoftmaxWeightedSum) {
  Var t1 = MakeParam(RandomMatrix(3, 2, 20));
  Var t2 = MakeParam(RandomMatrix(3, 2, 21));
  Var t3 = MakeParam(RandomMatrix(3, 2, 22));
  Var alpha = MakeParam(RandomMatrix(1, 3, 23));
  ExpectGradientsMatch(
      [&] {
        Var y = SoftmaxWeightedSum({t1, t2, t3}, alpha);
        return SumAll(CWiseMul(y, y));
      },
      {t1, t2, t3, alpha});
}

TEST(GradCheckTest, CWiseMax) {
  Matrix ma = RandomMatrix(3, 3, 24);
  Matrix mb = RandomMatrix(3, 3, 25);
  // Separate the operands so no entry sits at the tie kink.
  for (int64_t i = 0; i < ma.size(); ++i) {
    if (std::abs(ma.data()[i] - mb.data()[i]) < 0.05) mb.data()[i] += 0.2;
  }
  Var a = MakeParam(ma);
  Var b = MakeParam(mb);
  ExpectGradientsMatch(
      [&] {
        Var y = CWiseMax(a, b);
        return SumAll(CWiseMul(y, y));
      },
      {a, b});
}

TEST(GradCheckTest, MulColBroadcast) {
  Var m = MakeParam(RandomMatrix(4, 3, 26));
  Var col = MakeParam(RandomMatrix(4, 1, 27));
  ExpectGradientsMatch(
      [&] {
        Var y = MulColBroadcast(m, col);
        return SumAll(CWiseMul(y, y));
      },
      {m, col});
}

TEST(GradCheckTest, MaskedCrossEntropy) {
  Var logits = MakeParam(RandomMatrix(5, 3, 28));
  const std::vector<int> labels{0, 2, 1, 0, 2};
  ExpectGradientsMatch(
      [&] { return MaskedCrossEntropy(logits, labels, {0, 2, 4}); }, {logits});
}

TEST(GradCheckTest, MaskedNllFromProbs) {
  // Probabilities strictly inside (0, 1) keep the clamp inactive.
  Matrix probs(4, 3);
  Rng rng(29);
  for (int r = 0; r < 4; ++r) {
    double total = 0.0;
    for (int c = 0; c < 3; ++c) {
      probs(r, c) = 0.2 + rng.Uniform();
      total += probs(r, c);
    }
    for (int c = 0; c < 3; ++c) probs(r, c) /= total;
  }
  Var p = MakeParam(probs);
  const std::vector<int> labels{1, 0, 2, 1};
  ExpectGradientsMatch(
      [&] { return MaskedNllFromProbs(p, labels, {0, 1, 3}); }, {p});
}

TEST(GradCheckTest, BceWithLogits) {
  Var logits = MakeParam(RandomMatrix(6, 1, 30));
  const std::vector<double> targets{1, 0, 1, 1, 0, 0};
  ExpectGradientsMatch([&] { return BceWithLogits(logits, targets); },
                       {logits});
}

}  // namespace
}  // namespace ahg
