// Edge cases of proxy-subgraph sampling (graph/sampling.cc): zero-degree
// nodes survive induction, sample sizes clamp to the graph, fixed seeds
// reproduce the draw exactly, and split projection drops absent nodes.
#include <algorithm>
#include <set>

#include "graph/sampling.h"
#include "graph/split.h"
#include "graph/synthetic.h"
#include "gtest/gtest.h"

namespace ahg {
namespace {

// A 6-node path 0-1-2-3 plus isolated nodes 4 and 5.
Graph PathWithIsolates() {
  std::vector<Edge> edges = {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}};
  Matrix features(6, 2);
  for (int r = 0; r < 6; ++r) {
    features(r, 0) = r;
    features(r, 1) = 10.0 + r;
  }
  return Graph::Create(6, std::move(edges), /*directed=*/false,
                       std::move(features), {0, 1, 0, 1, 0, 1},
                       /*num_classes=*/2);
}

TEST(SamplingTest, ZeroDegreeNodesSurviveWithFeaturesAndLabels) {
  Graph graph = PathWithIsolates();
  Rng rng(3);
  // ratio 1.0 keeps every node, including the isolated ones.
  Subgraph sub = SampleInducedSubgraph(graph, 1.0, &rng);
  ASSERT_EQ(sub.graph.num_nodes(), 6);
  EXPECT_EQ(sub.graph.num_edges(), 3);
  for (int i = 0; i < 6; ++i) {
    const int orig = sub.node_map[i];
    EXPECT_EQ(sub.graph.labels()[i], graph.labels()[orig]);
    EXPECT_DOUBLE_EQ(sub.graph.features()(i, 0), graph.features()(orig, 0));
  }
  // Isolated original nodes stay isolated: adjacency row has only the self
  // loop under kRawSelfLoops.
  const SparseMatrix& adj =
      sub.graph.Adjacency(AdjacencyKind::kRawSelfLoops);
  for (int i = 0; i < 6; ++i) {
    if (sub.node_map[i] >= 4) EXPECT_EQ(adj.RowNnz(i), 1);
  }
}

TEST(SamplingTest, TinyRatioClampsToOneNode) {
  Graph graph = PathWithIsolates();
  Rng rng(5);
  Subgraph sub = SampleInducedSubgraph(graph, 1e-9, &rng);
  ASSERT_EQ(sub.graph.num_nodes(), 1);
  EXPECT_EQ(sub.graph.num_edges(), 0);
  EXPECT_EQ(static_cast<int>(sub.node_map.size()), 1);
}

TEST(SamplingTest, SampleNeverExceedsGraphAndMapIsValid) {
  SyntheticConfig cfg;
  cfg.num_nodes = 40;
  cfg.num_classes = 3;
  cfg.feature_dim = 4;
  cfg.avg_degree = 3.0;
  cfg.seed = 17;
  Graph graph = GenerateSbmGraph(cfg);
  for (double ratio : {0.1, 0.5, 0.999, 1.0}) {
    Rng rng(9);
    Subgraph sub = SampleInducedSubgraph(graph, ratio, &rng);
    EXPECT_LE(sub.graph.num_nodes(), graph.num_nodes());
    EXPECT_GE(sub.graph.num_nodes(), 1);
    std::set<int> seen;
    for (int orig : sub.node_map) {
      EXPECT_GE(orig, 0);
      EXPECT_LT(orig, graph.num_nodes());
      EXPECT_TRUE(seen.insert(orig).second) << "duplicate node in map";
    }
    // node_map is sorted, so induced edges are reproducible.
    EXPECT_TRUE(std::is_sorted(sub.node_map.begin(), sub.node_map.end()));
  }
}

TEST(SamplingTest, FixedSeedReproducesDrawExactly) {
  SyntheticConfig cfg;
  cfg.num_nodes = 60;
  cfg.num_classes = 4;
  cfg.feature_dim = 5;
  cfg.avg_degree = 4.0;
  cfg.seed = 23;
  Graph graph = GenerateSbmGraph(cfg);
  Rng rng_a(123);
  Rng rng_b(123);
  Subgraph a = SampleInducedSubgraph(graph, 0.4, &rng_a);
  Subgraph b = SampleInducedSubgraph(graph, 0.4, &rng_b);
  EXPECT_EQ(a.node_map, b.node_map);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (int64_t e = 0; e < a.graph.num_edges(); ++e) {
    EXPECT_EQ(a.graph.edges()[e].src, b.graph.edges()[e].src);
    EXPECT_EQ(a.graph.edges()[e].dst, b.graph.edges()[e].dst);
  }
  Rng rng_c(124);
  Subgraph c = SampleInducedSubgraph(graph, 0.4, &rng_c);
  EXPECT_NE(a.node_map, c.node_map) << "different seeds drew the same sample";
}

TEST(SamplingTest, ProjectSplitDropsAbsentNodesAndRemapsPresent) {
  Graph graph = PathWithIsolates();
  Rng rng(3);
  Subgraph sub = SampleInducedSubgraph(graph, 0.5, &rng);  // 3 of 6 nodes
  DataSplit split;
  split.train = {0, 1, 2, 3, 4, 5};
  split.val = {0, 5};
  split.test = {3};
  DataSplit projected = ProjectSplit(sub, split, graph.num_nodes());
  EXPECT_EQ(projected.train.size(), sub.node_map.size());
  for (int idx : projected.train) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, sub.graph.num_nodes());
  }
  // Every projected index maps back to a node that was in the sample.
  for (int idx : projected.val) {
    EXPECT_TRUE(std::count(split.val.begin(), split.val.end(),
                           sub.node_map[idx]) > 0);
  }
}

}  // namespace
}  // namespace ahg
