#include "graph/graph.h"

#include <cmath>

#include "gtest/gtest.h"

namespace ahg {
namespace {

// Path graph 0-1-2 plus an isolated node 3.
Graph PathGraph(bool directed = false) {
  Matrix features = Matrix::Constant(4, 2, 1.0);
  return Graph::Create(4, {{0, 1, 1.0}, {1, 2, 1.0}}, directed,
                       std::move(features), {0, 1, 0, -1}, 2);
}

TEST(GraphTest, BasicAccessors) {
  Graph g = PathGraph();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.num_classes(), 2);
  EXPECT_EQ(g.feature_dim(), 2);
  EXPECT_NEAR(g.AverageDegree(), 0.5, 1e-12);
}

TEST(GraphTest, LabeledNodesSkipsUnlabeled) {
  Graph g = PathGraph();
  EXPECT_EQ(g.LabeledNodes(), (std::vector<int>{0, 1, 2}));
}

TEST(GraphTest, SymNormRowsOfIsolatedNodeKeepSelfLoop) {
  Graph g = PathGraph();
  const SparseMatrix& adj = g.Adjacency(AdjacencyKind::kSymNorm);
  // Isolated node 3: degree 1 from the self loop -> normalized weight 1.
  Matrix dense = adj.ToDense();
  EXPECT_NEAR(dense(3, 3), 1.0, 1e-12);
}

TEST(GraphTest, SymNormIsSymmetric) {
  Graph g = PathGraph();
  Matrix dense = g.Adjacency(AdjacencyKind::kSymNorm).ToDense();
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_NEAR(dense(i, j), dense(j, i), 1e-12);
  }
}

TEST(GraphTest, SymNormMatchesManualComputation) {
  Graph g = PathGraph();
  Matrix dense = g.Adjacency(AdjacencyKind::kSymNorm).ToDense();
  // Node 0: deg 2 (self + edge to 1); node 1: deg 3. Entry (0,1):
  // 1/sqrt(2*3).
  EXPECT_NEAR(dense(0, 1), 1.0 / std::sqrt(6.0), 1e-12);
  EXPECT_NEAR(dense(0, 0), 0.5, 1e-12);
}

TEST(GraphTest, RowNormRowsSumToOne) {
  Graph g = PathGraph();
  Matrix dense = g.Adjacency(AdjacencyKind::kRowNorm).ToDense();
  for (int r = 0; r < 4; ++r) {
    double total = 0.0;
    for (int c = 0; c < 4; ++c) total += dense(r, c);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(GraphTest, DirectedRowNormRespectsDirection) {
  Graph g = PathGraph(/*directed=*/true);
  Matrix dense = g.Adjacency(AdjacencyKind::kRowNorm).ToDense();
  // Edge 0 -> 1 delivers into node 1's row only.
  EXPECT_GT(dense(1, 0), 0.0);
  EXPECT_EQ(dense(0, 1), 0.0);
}

TEST(GraphTest, RawSelfLoopsContainsDiagonal) {
  Graph g = PathGraph();
  Matrix dense = g.Adjacency(AdjacencyKind::kRawSelfLoops).ToDense();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(dense(i, i), 1.0);
  EXPECT_EQ(dense(1, 0), 1.0);
  EXPECT_EQ(dense(0, 1), 1.0);  // undirected stores both directions
}

TEST(GraphTest, SymNormNoSelfLoopsHasZeroDiagonal) {
  Graph g = PathGraph();
  Matrix dense = g.Adjacency(AdjacencyKind::kSymNormNoSelfLoops).ToDense();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(dense(i, i), 0.0);
}

TEST(GraphTest, SynthesizeDegreeFeaturesShapes) {
  Graph g = PathGraph();
  g.SynthesizeDegreeFeatures(8);
  EXPECT_EQ(g.feature_dim(), 9);
  // Each row has exactly one bucket flag plus the scalar column.
  for (int r = 0; r < 4; ++r) {
    double bucket_sum = 0.0;
    for (int c = 0; c < 8; ++c) bucket_sum += g.features()(r, c);
    EXPECT_EQ(bucket_sum, 1.0);
  }
}

TEST(GraphTest, RowNormalizeFeaturesMakesL1Rows) {
  Matrix features = Matrix::FromRows({{2.0, 2.0}, {0.0, 0.0}, {-3.0, 1.0}});
  Graph g = Graph::Create(3, {}, false, std::move(features), {0, 1, 0}, 2);
  g.RowNormalizeFeatures();
  EXPECT_NEAR(g.features()(0, 0), 0.5, 1e-12);
  EXPECT_EQ(g.features()(1, 0), 0.0);  // zero rows untouched
  EXPECT_NEAR(std::abs(g.features()(2, 0)) + std::abs(g.features()(2, 1)),
              1.0, 1e-12);
}

TEST(GraphTest, WeightedEdgesFlowIntoAdjacency) {
  Graph g = Graph::Create(2, {{0, 1, 2.5}}, false,
                          Matrix::Constant(2, 1, 1.0), {0, 1}, 2);
  Matrix raw = g.Adjacency(AdjacencyKind::kRawSelfLoops).ToDense();
  EXPECT_EQ(raw(1, 0), 2.5);
}

TEST(GraphTest, CreateCheckedAcceptsValidInput) {
  auto g = Graph::CreateChecked(3, {{0, 1, 1.0}, {1, 2, 1.0}}, false,
                                Matrix::Constant(3, 2, 1.0), {0, 1, 0}, 2);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g.value().num_nodes(), 3);
  EXPECT_EQ(g.value().num_edges(), 2);
}

TEST(GraphTest, CreateCheckedRejectsOutOfRangeEndpoints) {
  auto low = Graph::CreateChecked(3, {{-1, 1, 1.0}}, false,
                                  Matrix::Constant(3, 1, 1.0), {}, 2);
  EXPECT_FALSE(low.ok());
  auto high = Graph::CreateChecked(3, {{0, 3, 1.0}}, false,
                                   Matrix::Constant(3, 1, 1.0), {}, 2);
  EXPECT_FALSE(high.ok());
  auto negative = Graph::CreateChecked(-1, {}, false, Matrix(), {}, 2);
  EXPECT_FALSE(negative.ok());
}

TEST(GraphTest, CreateCheckedRejectsDuplicateEdges) {
  auto repeated = Graph::CreateChecked(3, {{0, 1, 1.0}, {0, 1, 2.0}}, false,
                                       Matrix::Constant(3, 1, 1.0), {}, 2);
  EXPECT_FALSE(repeated.ok());
  // Undirected: the reversed orientation lands on the same CSR entries and
  // would silently sum, so it counts as a duplicate too...
  auto reversed = Graph::CreateChecked(3, {{0, 1, 1.0}, {1, 0, 1.0}}, false,
                                       Matrix::Constant(3, 1, 1.0), {}, 2);
  EXPECT_FALSE(reversed.ok());
  // ...but is a distinct, legal edge pair when the graph is directed.
  auto directed = Graph::CreateChecked(3, {{0, 1, 1.0}, {1, 0, 1.0}}, true,
                                       Matrix::Constant(3, 1, 1.0), {}, 2);
  EXPECT_TRUE(directed.ok()) << directed.status().ToString();
}

TEST(GraphTest, CreateCheckedRejectsLabelCountMismatch) {
  auto g = Graph::CreateChecked(3, {{0, 1, 1.0}}, false,
                                Matrix::Constant(3, 1, 1.0), {0, 1}, 2);
  EXPECT_FALSE(g.ok());
}

TEST(InducedSubgraphTest, OrderOfInputDefinesNewIds) {
  // Square 0-1-2-3-0 with a chord 0-2; take {2, 0, 3} in that order.
  Matrix features(4, 2);
  for (int r = 0; r < 4; ++r) {
    features(r, 0) = r;
    features(r, 1) = 10.0 + r;
  }
  Graph g = Graph::Create(
      4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 0, 1.0}, {0, 2, 0.5}},
      false, std::move(features), {0, 1, 0, 1}, 2);
  auto sub = g.InducedSubgraph({2, 0, 3});
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  EXPECT_EQ(sub.value().num_nodes(), 3);
  // Surviving edges: 2-3, 3-0, 0-2 (chord); 0-1 and 1-2 drop with node 1.
  EXPECT_EQ(sub.value().num_edges(), 3);
  // Node i of the result is nodes[i]: features/labels gathered in order.
  EXPECT_DOUBLE_EQ(sub.value().features()(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(sub.value().features()(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(sub.value().features()(2, 0), 3.0);
  EXPECT_EQ(sub.value().labels(), (std::vector<int>{0, 0, 1}));
  // Chord weight survives remapping: new ids 1 (old 0) and 0 (old 2).
  Matrix dense = sub.value().Adjacency(AdjacencyKind::kRawSelfLoops).ToDense();
  EXPECT_DOUBLE_EQ(dense(1, 0), 0.5);
}

TEST(InducedSubgraphTest, EmptySetYieldsEmptyGraph) {
  Graph g = PathGraph();
  auto sub = g.InducedSubgraph({});
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  EXPECT_EQ(sub.value().num_nodes(), 0);
  EXPECT_EQ(sub.value().num_edges(), 0);
}

TEST(InducedSubgraphTest, IsolatedNodesKeepNoEdges) {
  Graph g = PathGraph();  // 0-1-2 path, 3 isolated
  auto sub = g.InducedSubgraph({3, 0});  // no surviving edge between them
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub.value().num_nodes(), 2);
  EXPECT_EQ(sub.value().num_edges(), 0);
  EXPECT_EQ(sub.value().labels(), (std::vector<int>{-1, 0}));
}

TEST(InducedSubgraphTest, RejectsDuplicateAndOutOfRangeIds) {
  Graph g = PathGraph();
  EXPECT_EQ(g.InducedSubgraph({0, 1, 0}).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(g.InducedSubgraph({0, 4}).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(g.InducedSubgraph({-1}).status().code(),
            Status::Code::kInvalidArgument);
}

TEST(GraphDeathTest, CreateAbortsOnDuplicateEdge) {
  EXPECT_DEATH(Graph::Create(3, {{0, 1, 1.0}, {1, 0, 1.0}}, false,
                             Matrix::Constant(3, 1, 1.0), {}, 2),
               "duplicate edge");
}

}  // namespace
}  // namespace ahg
