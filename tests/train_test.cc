// End-to-end trainer checks on tiny synthetic graphs: models must beat
// chance clearly, early stopping must trigger, and the link/graph trainers
// must reach sensible quality.
#include "tasks/train_node.h"

#include "graph/synthetic.h"
#include "gtest/gtest.h"
#include "tasks/train_graph.h"
#include "tasks/train_link.h"

namespace ahg {
namespace {

Graph EasyGraph(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_nodes = 150;
  cfg.num_classes = 3;
  cfg.feature_dim = 12;
  cfg.avg_degree = 5.0;
  cfg.homophily = 0.9;
  cfg.feature_signal = 1.2;
  cfg.seed = seed;
  return GenerateSbmGraph(cfg);
}

ModelConfig SmallGcn() {
  ModelConfig cfg;
  cfg.family = ModelFamily::kGcn;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.dropout = 0.3;
  cfg.seed = 1;
  return cfg;
}

TrainConfig FastTrain() {
  TrainConfig cfg;
  cfg.max_epochs = 60;
  cfg.patience = 10;
  cfg.learning_rate = 2e-2;
  cfg.seed = 3;
  return cfg;
}

TEST(TrainNodeTest, GcnLearnsEasySbm) {
  Graph g = EasyGraph(1);
  Rng rng(2);
  DataSplit split = RandomSplit(g, 0.5, 0.2, &rng);
  NodeTrainResult result =
      TrainSingleNodeModel(SmallGcn(), g, split, FastTrain());
  // 3 balanced classes: chance ~0.33. A GCN on a homophilous SBM with
  // strong features should be far above that.
  EXPECT_GT(result.val_accuracy, 0.7);
  EXPECT_GT(result.test_accuracy, 0.7);
  EXPECT_EQ(result.probs.rows(), g.num_nodes());
  EXPECT_EQ(result.probs.cols(), g.num_classes());
  EXPECT_GT(result.best_epoch, 0);
  EXPECT_GT(result.train_seconds, 0.0);
}

TEST(TrainNodeTest, ProbsRowsSumToOne) {
  Graph g = EasyGraph(2);
  Rng rng(3);
  DataSplit split = RandomSplit(g, 0.5, 0.2, &rng);
  NodeTrainResult result =
      TrainSingleNodeModel(SmallGcn(), g, split, FastTrain());
  for (int r = 0; r < result.probs.rows(); ++r) {
    double total = 0.0;
    for (int c = 0; c < result.probs.cols(); ++c) {
      total += result.probs(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(TrainNodeTest, EarlyStoppingCapsEpochs) {
  Graph g = EasyGraph(3);
  Rng rng(4);
  DataSplit split = RandomSplit(g, 0.5, 0.2, &rng);
  TrainConfig tcfg = FastTrain();
  tcfg.max_epochs = 500;
  tcfg.patience = 3;
  NodeTrainResult result = TrainSingleNodeModel(SmallGcn(), g, split, tcfg);
  // With patience 3 on an easy task training must stop well before 500.
  EXPECT_LT(result.best_epoch, 400);
}

TEST(TrainNodeTest, DeterministicGivenSeeds) {
  Graph g = EasyGraph(4);
  Rng rng(5);
  DataSplit split = RandomSplit(g, 0.5, 0.2, &rng);
  NodeTrainResult a = TrainSingleNodeModel(SmallGcn(), g, split, FastTrain());
  NodeTrainResult b = TrainSingleNodeModel(SmallGcn(), g, split, FastTrain());
  EXPECT_TRUE(AllClose(a.probs, b.probs, 0.0));
}

TEST(TrainNodeTest, GridSearchReturnsBestOfGrid) {
  Graph g = EasyGraph(5);
  Rng rng(6);
  DataSplit split = RandomSplit(g, 0.5, 0.2, &rng);
  GridSearchSpace space;
  space.learning_rates = {1e-2, 1e-4};  // 1e-4 should undertrain
  space.dropouts = {0.3};
  ModelConfig best_mcfg;
  TrainConfig best_tcfg;
  TrainConfig tcfg = FastTrain();
  tcfg.max_epochs = 30;
  NodeTrainResult best = GridSearchTrain(SmallGcn(), g, split, tcfg, space,
                                         &best_mcfg, &best_tcfg);
  NodeTrainResult slow;
  {
    TrainConfig t2 = tcfg;
    t2.learning_rate = 1e-4;
    ModelConfig m2 = SmallGcn();
    m2.dropout = 0.3;
    slow = TrainSingleNodeModel(m2, g, split, t2);
  }
  EXPECT_GE(best.val_accuracy, slow.val_accuracy);
  EXPECT_EQ(best_mcfg.dropout, 0.3);
}

TEST(TrainLinkTest, GcnEncoderBeatsChanceAuc) {
  Graph g = EasyGraph(6);
  Rng rng(7);
  LinkSplit split = MakeLinkSplit(g, 0.1, 0.15, &rng);
  ModelConfig mcfg = SmallGcn();
  mcfg.dropout = 0.1;
  TrainConfig tcfg = FastTrain();
  LinkTrainResult result = TrainLinkModel(mcfg, split, tcfg);
  EXPECT_GT(result.val_auc, 0.6);
  EXPECT_GT(result.test_auc, 0.6);
  EXPECT_EQ(result.test_scores.size(),
            split.test_pos.size() + split.test_neg.size());
}

TEST(TrainLinkTest, LinkLabelsLayout) {
  std::vector<int> labels = LinkLabels(2, 3);
  EXPECT_EQ(labels, (std::vector<int>{1, 1, 0, 0, 0}));
}

TEST(TrainGraphTest, GinSeparatesDensityClasses) {
  ProteinsLikeConfig pcfg;
  pcfg.num_graphs = 60;
  pcfg.seed = 8;
  GraphSet set = GenerateProteinsLike(pcfg);
  Rng rng(9);
  GraphSetSplit split = RandomGraphSetSplit(set, 0.6, 0.2, &rng);
  ModelConfig mcfg;
  mcfg.family = ModelFamily::kGin;
  mcfg.hidden_dim = 16;
  mcfg.num_layers = 2;
  mcfg.dropout = 0.2;
  mcfg.seed = 10;
  GraphTrainResult result =
      TrainGraphClassifier(mcfg, set, split, FastTrain());
  EXPECT_GT(result.val_accuracy, 0.7);
  EXPECT_GT(result.test_accuracy, 0.7);
  EXPECT_EQ(result.probs.rows(), static_cast<int>(set.graphs.size()));
}

TEST(TrainGraphTest, SplitPartitionsSet) {
  ProteinsLikeConfig pcfg;
  pcfg.num_graphs = 30;
  pcfg.seed = 11;
  GraphSet set = GenerateProteinsLike(pcfg);
  Rng rng(12);
  GraphSetSplit split = RandomGraphSetSplit(set, 0.5, 0.25, &rng);
  EXPECT_EQ(split.train.size() + split.val.size() + split.test.size(), 30u);
}

}  // namespace
}  // namespace ahg
