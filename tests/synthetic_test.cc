#include "graph/synthetic.h"

#include <cmath>

#include "graph/sampling.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace ahg {
namespace {

double MeasuredHomophily(const Graph& g) {
  int64_t same = 0;
  for (const Edge& e : g.edges()) {
    same += g.labels()[e.src] == g.labels()[e.dst];
  }
  return static_cast<double>(same) / static_cast<double>(g.num_edges());
}

TEST(SyntheticTest, RespectsNodeAndClassCounts) {
  SyntheticConfig cfg;
  cfg.num_nodes = 500;
  cfg.num_classes = 5;
  cfg.feature_dim = 16;
  cfg.seed = 1;
  Graph g = GenerateSbmGraph(cfg);
  EXPECT_EQ(g.num_nodes(), 500);
  EXPECT_EQ(g.num_classes(), 5);
  EXPECT_EQ(g.feature_dim(), 16);
  // Balanced classes within a couple of nodes.
  std::vector<int> counts(5, 0);
  for (int label : g.labels()) ++counts[label];
  for (int c = 0; c < 5; ++c) EXPECT_EQ(counts[c], 100);
}

TEST(SyntheticTest, EdgeCountNearTarget) {
  SyntheticConfig cfg;
  cfg.num_nodes = 800;
  cfg.avg_degree = 4.0;
  cfg.seed = 2;
  Graph g = GenerateSbmGraph(cfg);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), 3200.0, 200.0);
}

TEST(SyntheticTest, HomophilyControlsSameClassEdges) {
  SyntheticConfig low;
  low.num_nodes = 600;
  low.num_classes = 4;
  low.avg_degree = 6.0;
  low.homophily = 0.2;
  low.seed = 3;
  SyntheticConfig high = low;
  high.homophily = 0.9;
  const double h_low = MeasuredHomophily(GenerateSbmGraph(low));
  const double h_high = MeasuredHomophily(GenerateSbmGraph(high));
  EXPECT_LT(h_low, 0.5);
  EXPECT_GT(h_high, 0.8);
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  SyntheticConfig cfg;
  cfg.num_nodes = 300;
  cfg.seed = 77;
  Graph a = GenerateSbmGraph(cfg);
  Graph b = GenerateSbmGraph(cfg);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (int64_t i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.edges()[i].src, b.edges()[i].src);
    EXPECT_EQ(a.edges()[i].dst, b.edges()[i].dst);
  }
  EXPECT_TRUE(AllClose(a.features(), b.features(), 0.0));
}

TEST(SyntheticTest, PowerLawSkewsDegrees) {
  SyntheticConfig flat;
  flat.num_nodes = 800;
  flat.avg_degree = 6.0;
  flat.power_law = 0.0;
  flat.seed = 4;
  SyntheticConfig skewed = flat;
  skewed.power_law = 0.8;
  auto max_degree = [](const Graph& g) {
    std::vector<int> deg(g.num_nodes(), 0);
    for (const Edge& e : g.edges()) {
      ++deg[e.src];
      ++deg[e.dst];
    }
    return *std::max_element(deg.begin(), deg.end());
  };
  EXPECT_GT(max_degree(GenerateSbmGraph(skewed)),
            max_degree(GenerateSbmGraph(flat)));
}

TEST(SyntheticTest, WeightedEdgesInRange) {
  SyntheticConfig cfg;
  cfg.num_nodes = 200;
  cfg.weighted = true;
  cfg.seed = 5;
  Graph g = GenerateSbmGraph(cfg);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.weight, 0.5);
    EXPECT_LT(e.weight, 2.0);
  }
}

TEST(SyntheticTest, FeaturelessStyleProducesEmptyFeatures) {
  SyntheticConfig cfg;
  cfg.num_nodes = 100;
  cfg.feature_style = FeatureStyle::kNone;
  cfg.seed = 6;
  Graph g = GenerateSbmGraph(cfg);
  EXPECT_EQ(g.feature_dim(), 0);
}

TEST(SyntheticTest, BinaryBowFeaturesAreBinary) {
  SyntheticConfig cfg;
  cfg.num_nodes = 100;
  cfg.feature_style = FeatureStyle::kBinaryBow;
  cfg.seed = 7;
  Graph g = GenerateSbmGraph(cfg);
  for (int64_t i = 0; i < g.features().size(); ++i) {
    const double v = g.features().data()[i];
    EXPECT_TRUE(v == 0.0 || v == 1.0);
  }
}

class PresetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PresetTest, BuildsAndHasUsableFeatures) {
  // arxiv-syn is exercised separately (it is the large preset).
  Graph g = MakePresetGraph(GetParam(), /*seed=*/11);
  EXPECT_GT(g.num_nodes(), 0);
  EXPECT_GT(g.num_edges(), 0);
  EXPECT_GT(g.feature_dim(), 0);  // E gets degree features synthesized
  EXPECT_GT(g.num_classes(), 1);
}

INSTANTIATE_TEST_SUITE_P(SmallPresets, PresetTest,
                         ::testing::Values("A", "B", "C", "D", "E",
                                           "cora-syn", "citeseer-syn",
                                           "pubmed-syn"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(PresetTest, TableOneShapeStatistics) {
  // Table I of the paper: A is Cora-sized with 7 classes, B Citeseer-sized
  // with 6, D is directed+weighted, E has no intrinsic features.
  EXPECT_EQ(PresetConfig("A").num_classes, 7);
  EXPECT_EQ(PresetConfig("A").num_nodes, 2708);
  EXPECT_EQ(PresetConfig("B").num_classes, 6);
  EXPECT_TRUE(PresetConfig("D").directed);
  EXPECT_TRUE(PresetConfig("D").weighted);
  EXPECT_EQ(PresetConfig("E").feature_style, FeatureStyle::kNone);
}

TEST(PresetTest, UnknownPresetAborts) {
  EXPECT_DEATH(PresetConfig("does-not-exist"), "unknown synthetic preset");
}

TEST(SamplingTest, InducedSubgraphKeepsOnlyInternalEdges) {
  Graph g = MakePresetGraph("A", 3);
  Rng rng(8);
  Subgraph sub = SampleInducedSubgraph(g, 0.3, &rng);
  EXPECT_NEAR(static_cast<double>(sub.graph.num_nodes()),
              0.3 * g.num_nodes(), 2.0);
  // Every subgraph edge maps to an original edge between sampled nodes.
  for (const Edge& e : sub.graph.edges()) {
    EXPECT_LT(e.src, sub.graph.num_nodes());
    EXPECT_LT(e.dst, sub.graph.num_nodes());
  }
  // Labels and features carried over.
  for (int i = 0; i < sub.graph.num_nodes(); ++i) {
    EXPECT_EQ(sub.graph.labels()[i], g.labels()[sub.node_map[i]]);
    EXPECT_EQ(sub.graph.features()(i, 0), g.features()(sub.node_map[i], 0));
  }
}

TEST(SamplingTest, ProjectSplitMapsIndices) {
  Graph g = MakePresetGraph("A", 3);
  Rng rng(9);
  Subgraph sub = SampleInducedSubgraph(g, 0.5, &rng);
  DataSplit split;
  split.train = {sub.node_map[0], sub.node_map[1]};
  split.val = {sub.node_map[2]};
  DataSplit projected = ProjectSplit(sub, split, g.num_nodes());
  EXPECT_EQ(projected.train, (std::vector<int>{0, 1}));
  EXPECT_EQ(projected.val, (std::vector<int>{2}));
}

}  // namespace
}  // namespace ahg
