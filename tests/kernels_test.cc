// Kernel backend tests: 64-byte allocation alignment on every Matrix path,
// the bitwise-identity matrix across dispatch tiers x kernel variants x odd
// shapes x thread counts, odd-shape edge cases, and tuning-profile
// round-trips (persist -> reload -> same variant, no re-benchmark).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "autodiff/ops.h"
#include "autodiff/variable.h"
#include "gtest/gtest.h"
#include "kernels/autotune.h"
#include "kernels/dispatch.h"
#include "kernels/kernel_ops.h"
#include "tensor/aligned.h"
#include "tensor/matrix.h"
#include "tensor/pool.h"
#include "tensor/sparse_matrix.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ahg {
namespace {

using kernels::GemmChoice;
using kernels::KernelTuner;
using kernels::ScopedForcedGemm;
using kernels::ScopedForcedSpmm;
using kernels::ScopedTier;
using kernels::SpmmChoice;
using kernels::Tier;
using kernels::TierOps;
using kernels::TierSupported;

// ~10% exact zeros so the GEMM zero-skip path is exercised.
Matrix RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.Bernoulli(0.1) ? 0.0 : rng.Normal(0.0, 1.0);
  }
  return m;
}

// ~20% of rows have no entries (zero-nnz edge) and degrees vary, so the
// nnz-split schedule partitions unevenly.
SparseMatrix RandomSparse(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  std::vector<CooEntry> entries;
  for (int r = 0; r < rows; ++r) {
    if (rng.Bernoulli(0.2)) continue;
    const int degree = 1 + static_cast<int>(rng.UniformInt(8));
    for (int d = 0; d < degree; ++d) {
      entries.push_back({r, static_cast<int>(rng.UniformInt(cols)),
                         rng.Normal(0.0, 1.0)});
    }
  }
  return SparseMatrix::FromCoo(rows, cols, std::move(entries));
}

::testing::AssertionResult BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape " << a.rows() << "x" << a.cols() << " vs " << b.rows()
           << "x" << b.cols();
  }
  if (a.size() > 0 &&
      std::memcmp(a.data(), b.data(),
                  static_cast<size_t>(a.size()) * sizeof(double)) != 0) {
    for (int64_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a.data()[i], &b.data()[i], sizeof(double)) != 0) {
        return ::testing::AssertionFailure()
               << "first difference at flat index " << i << ": "
               << a.data()[i] << " vs " << b.data()[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

std::vector<Tier> SupportedSimdTiers() {
  std::vector<Tier> tiers;
  if (TierSupported(Tier::kAvx2)) tiers.push_back(Tier::kAvx2);
  if (TierSupported(Tier::kAvx512)) tiers.push_back(Tier::kAvx512);
  return tiers;
}

TEST(AlignmentTest, EveryAllocationPathIs64ByteAligned) {
  // Fresh (unpooled) allocation.
  Matrix fresh(5, 7);
  EXPECT_TRUE(IsTensorAligned(fresh.data()));

  // FromRows and copy construction.
  Matrix from_rows = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_TRUE(IsTensorAligned(from_rows.data()));
  Matrix copy = from_rows;
  EXPECT_TRUE(IsTensorAligned(copy.data()));

  // GrowRows allocates the destination through the normal path.
  Matrix grown = GrowRows(from_rows, 9);
  EXPECT_TRUE(IsTensorAligned(grown.data()));

  // Pooled: both the miss (heap) and the hit (recycled) must be aligned.
  {
    ScopedMemPlane plane(/*pooling=*/true, /*fusion=*/false);
    double* first = nullptr;
    {
      Matrix pooled(13, 17);  // odd size: miss -> aligned heap alloc
      EXPECT_TRUE(IsTensorAligned(pooled.data()));
      first = pooled.data();
    }
    Matrix recycled(13, 17);  // same size: pool hit returns the parked buffer
    EXPECT_EQ(recycled.data(), first);
    EXPECT_TRUE(IsTensorAligned(recycled.data()));
  }

  // Move transfers the (aligned) buffer.
  Matrix moved = std::move(fresh);
  EXPECT_TRUE(IsTensorAligned(moved.data()));
}

TEST(DispatchTest, ScopedTierForcesAndRestores) {
  const Tier before = kernels::ActiveTier();
  {
    ScopedTier forced(Tier::kScalar);
    EXPECT_EQ(kernels::ActiveTier(), Tier::kScalar);
    EXPECT_EQ(kernels::ActiveOps().tier, Tier::kScalar);
  }
  EXPECT_EQ(kernels::ActiveTier(), before);
}

TEST(DispatchTest, OpsForFallsBackToSupportedTier) {
  // Whatever is requested, the returned table must be for a supported tier.
  for (Tier t : {Tier::kScalar, Tier::kAvx2, Tier::kAvx512}) {
    const TierOps& ops = kernels::OpsFor(t);
    EXPECT_TRUE(TierSupported(ops.tier));
    EXPECT_LE(static_cast<int>(ops.tier), static_cast<int>(t));
  }
}

TEST(BitwiseTest, DenseOpsMatchScalarAcrossTiersShapesThreads) {
  const std::vector<Tier> tiers = SupportedSimdTiers();
  ScopedMinParallelWork grain(1);  // force the threaded path on tiny inputs
  uint64_t seed = 1;
  for (const int m : {1, 5, 17, 33}) {
    for (const int k : {1, 8, 31}) {
      for (const int n : {1, 4, 9, 33}) {
        const Matrix a = RandomMatrix(m, k, seed++);
        const Matrix b = RandomMatrix(k, n, seed++);
        const Matrix bt = RandomMatrix(n, k, seed++);
        Matrix base_mm, base_ta, base_tb, base_sm, base_lsm;
        {
          ScopedTier scalar(Tier::kScalar);
          base_mm = MatMul(a, b);
          base_ta = MatMulTransA(a, RandomMatrix(m, n, seed));
          base_tb = MatMulTransB(a, bt);
          base_sm = RowSoftmax(a);
          base_lsm = RowLogSoftmax(a);
        }
        for (const Tier tier : tiers) {
          for (const int threads : {1, 4}) {
            ScopedTier t(tier);
            ScopedNumThreads nt(threads);
            EXPECT_TRUE(BitwiseEqual(MatMul(a, b), base_mm))
                << "matmul " << m << "x" << k << "x" << n << " tier "
                << kernels::TierName(tier) << " threads " << threads;
            EXPECT_TRUE(BitwiseEqual(MatMulTransA(a, RandomMatrix(m, n, seed)),
                                     base_ta))
                << "matmul_ta " << m << "x" << k << "x" << n;
            EXPECT_TRUE(BitwiseEqual(MatMulTransB(a, bt), base_tb))
                << "matmul_tb " << m << "x" << k << "x" << n;
            EXPECT_TRUE(BitwiseEqual(RowSoftmax(a), base_sm))
                << "softmax " << m << "x" << k;
            EXPECT_TRUE(BitwiseEqual(RowLogSoftmax(a), base_lsm))
                << "log_softmax " << m << "x" << k;
          }
        }
      }
    }
  }
}

TEST(BitwiseTest, GemmVariantSweepIsExact) {
  const Matrix a = RandomMatrix(37, 29, 101);
  const Matrix b = RandomMatrix(29, 23, 102);
  Matrix base;
  {
    ScopedTier scalar(Tier::kScalar);
    base = MatMul(a, b);
  }
  std::vector<Tier> tiers = SupportedSimdTiers();
  tiers.push_back(Tier::kScalar);
  for (const Tier tier : tiers) {
    const TierOps& ops = kernels::OpsFor(tier);
    for (int bi = 0; bi < ops.num_gemm_jblocks; ++bi) {
      for (const int kpanel : {64, 128, 256}) {
        ScopedTier t(tier);
        ScopedForcedGemm forced(GemmChoice{ops.gemm_jblocks[bi], kpanel});
        EXPECT_TRUE(BitwiseEqual(MatMul(a, b), base))
            << kernels::TierName(tier) << " jblock " << ops.gemm_jblocks[bi]
            << " kpanel " << kpanel;
      }
    }
  }
}

TEST(BitwiseTest, TransposedGemmVariantSweepIsExact) {
  // Tiling the TransA/TransB passes regroups which output entries a pass
  // touches but never the per-element accumulation order, so every forced
  // tile width must reproduce the scalar untiled result bit for bit.
  const Matrix a = RandomMatrix(31, 19, 201);   // k x m for TransA
  const Matrix b = RandomMatrix(31, 23, 202);   // k x n
  const Matrix c = RandomMatrix(17, 19, 203);   // m x k for TransB
  const Matrix d = RandomMatrix(29, 19, 204);   // n x k
  Matrix base_ta, base_tb;
  {
    ScopedTier scalar(Tier::kScalar);
    kernels::ScopedForcedGemmTransA fa(GemmChoice{0, 0});
    kernels::ScopedForcedGemmTransB fb(GemmChoice{0, 0});
    base_ta = MatMulTransA(a, b);
    base_tb = MatMulTransB(c, d);
  }
  std::vector<Tier> tiers = SupportedSimdTiers();
  tiers.push_back(Tier::kScalar);
  for (const Tier tier : tiers) {
    for (const int tile : {0, 4, 16, 64}) {
      for (const int threads : {1, 4}) {
        ScopedTier t(tier);
        ScopedNumThreads nt(threads);
        kernels::ScopedForcedGemmTransA fa(GemmChoice{tile, 0});
        kernels::ScopedForcedGemmTransB fb(GemmChoice{tile, 0});
        EXPECT_TRUE(BitwiseEqual(MatMulTransA(a, b), base_ta))
            << "trans_a " << kernels::TierName(tier) << " tile " << tile
            << " threads " << threads;
        EXPECT_TRUE(BitwiseEqual(MatMulTransB(c, d), base_tb))
            << "trans_b " << kernels::TierName(tier) << " tile " << tile
            << " threads " << threads;
      }
    }
  }
}

TEST(BitwiseTest, SpmmVariantSweepIsExact) {
  const SparseMatrix adj = RandomSparse(200, 150, 7);
  ScopedMinParallelWork grain(1);
  // A subset mixing zero-nnz rows, boundaries, and repeats.
  const std::vector<int> subset = {0, 3, 7, 7, 42, 150, 199};
  for (const int n : {1, 5, 16, 33}) {
    const Matrix x = RandomMatrix(150, n, 500 + n);
    Matrix base, base_rows;
    {
      ScopedTier scalar(Tier::kScalar);
      base = adj.Spmm(x);
      base_rows = adj.SpmmRows(subset, x);
    }
    std::vector<Tier> tiers = SupportedSimdTiers();
    tiers.push_back(Tier::kScalar);
    for (const Tier tier : tiers) {
      const TierOps& ops = kernels::OpsFor(tier);
      for (int bi = 0; bi < ops.num_spmm_cblocks; ++bi) {
        for (const bool nnz_split : {false, true}) {
          for (const int threads : {1, 4}) {
            ScopedTier t(tier);
            ScopedNumThreads nt(threads);
            ScopedForcedSpmm forced(
                SpmmChoice{ops.spmm_cblocks[bi], nnz_split});
            EXPECT_TRUE(BitwiseEqual(adj.Spmm(x), base))
                << kernels::TierName(tier) << " cblock "
                << ops.spmm_cblocks[bi] << " nnz_split " << nnz_split
                << " threads " << threads << " n " << n;
            EXPECT_TRUE(BitwiseEqual(adj.SpmmRows(subset, x), base_rows))
                << "rows subset, tier " << kernels::TierName(tier);
          }
        }
      }
    }
    // Subset rows must equal the corresponding rows of the full product.
    for (size_t i = 0; i < subset.size(); ++i) {
      for (int c = 0; c < n; ++c) {
        EXPECT_EQ(base_rows(static_cast<int>(i), c), base(subset[i], c));
      }
    }
  }
}

TEST(BitwiseTest, LinearReluForwardBackwardMatchesScalar) {
  const Matrix xm = RandomMatrix(19, 13, 301);
  const Matrix wm = RandomMatrix(13, 7, 302);
  const Matrix bm = RandomMatrix(1, 7, 303);
  auto run = [&](Matrix* y, Matrix* gx, Matrix* gw, Matrix* gb) {
    Var x = MakeParam(xm);
    Var w = MakeParam(wm);
    Var b = MakeParam(bm);
    Var out = LinearRelu(x, w, b);
    Backward(SumAll(out));
    *y = out->value;
    *gx = x->grad;
    *gw = w->grad;
    *gb = b->grad;
  };
  Matrix y0, gx0, gw0, gb0;
  {
    ScopedTier scalar(Tier::kScalar);
    run(&y0, &gx0, &gw0, &gb0);
  }
  for (const Tier tier : SupportedSimdTiers()) {
    ScopedTier t(tier);
    Matrix y, gx, gw, gb;
    run(&y, &gx, &gw, &gb);
    EXPECT_TRUE(BitwiseEqual(y, y0)) << kernels::TierName(tier);
    EXPECT_TRUE(BitwiseEqual(gx, gx0)) << kernels::TierName(tier);
    EXPECT_TRUE(BitwiseEqual(gw, gw0)) << kernels::TierName(tier);
    EXPECT_TRUE(BitwiseEqual(gb, gb0)) << kernels::TierName(tier);
  }
}

TEST(BitwiseTest, BiasReluRowHandlesNegativeZeroLikeScalar) {
  // -0.0 and true negatives must both map to +0.0 in every tier.
  const double in[7] = {-0.0, 0.0, -1.5, 2.5, -1e-300, 1e-300, -3.0};
  std::vector<Tier> tiers = SupportedSimdTiers();
  tiers.push_back(Tier::kScalar);
  for (const Tier tier : tiers) {
    const TierOps& ops = kernels::OpsFor(tier);
    double x[7];
    std::memcpy(x, in, sizeof(in));
    ops.bias_relu_row(x, nullptr, 7);
    for (int i = 0; i < 7; ++i) {
      const double expected = in[i] > 0.0 ? in[i] : 0.0;
      EXPECT_EQ(std::memcmp(&x[i], &expected, sizeof(double)), 0)
          << kernels::TierName(tier) << " index " << i;
      if (in[i] <= 0.0) {
        EXPECT_FALSE(std::signbit(x[i]))
            << kernels::TierName(tier) << " produced -0.0 at " << i;
      }
    }
  }
}

TEST(EdgeTest, SoftmaxOneColumnIsExactlyOne) {
  std::vector<Tier> tiers = SupportedSimdTiers();
  tiers.push_back(Tier::kScalar);
  const Matrix a = RandomMatrix(9, 1, 401);
  for (const Tier tier : tiers) {
    ScopedTier t(tier);
    const Matrix sm = RowSoftmax(a);
    const Matrix lsm = RowLogSoftmax(a);
    for (int r = 0; r < a.rows(); ++r) {
      EXPECT_EQ(sm(r, 0), 1.0) << kernels::TierName(tier);
      EXPECT_EQ(lsm(r, 0), 0.0) << kernels::TierName(tier);
    }
  }
}

TEST(EdgeTest, SoftmaxZeroColumnsDoesNotCrash) {
  const Matrix a(4, 0);
  const Matrix sm = RowSoftmax(a);
  EXPECT_EQ(sm.rows(), 4);
  EXPECT_EQ(sm.cols(), 0);
  const Matrix lsm = RowLogSoftmax(a);
  EXPECT_EQ(lsm.rows(), 4);
  EXPECT_EQ(lsm.cols(), 0);
}

TEST(EdgeTest, SpmmEmptySubsetAndZeroNnzRows) {
  // A matrix whose rows are all empty: the product is exactly zero.
  const SparseMatrix empty = SparseMatrix::FromCoo(6, 5, {});
  const Matrix x = RandomMatrix(5, 9, 402);
  std::vector<Tier> tiers = SupportedSimdTiers();
  tiers.push_back(Tier::kScalar);
  for (const Tier tier : tiers) {
    ScopedTier t(tier);
    const Matrix y = empty.Spmm(x);
    EXPECT_EQ(y.rows(), 6);
    for (int64_t i = 0; i < y.size(); ++i) EXPECT_EQ(y.data()[i], 0.0);
    // Empty row subset: zero-row result, no work, no crash.
    const Matrix yr = empty.SpmmRows({}, x);
    EXPECT_EQ(yr.rows(), 0);
    EXPECT_EQ(yr.cols(), 9);
  }
}

TEST(EdgeTest, GemmNarrowerThanRegisterBlock) {
  // Output width below every SIMD block width: only tail paths run.
  for (const int n : {1, 2, 3}) {
    const Matrix a = RandomMatrix(11, 10, 500 + n);
    const Matrix b = RandomMatrix(10, n, 600 + n);
    Matrix base;
    {
      ScopedTier scalar(Tier::kScalar);
      base = MatMul(a, b);
    }
    std::vector<Tier> tiers = SupportedSimdTiers();
    tiers.push_back(Tier::kScalar);
    for (const Tier tier : tiers) {
      ScopedTier t(tier);
      ScopedForcedGemm forced(GemmChoice{8, 128});
      EXPECT_TRUE(BitwiseEqual(MatMul(a, b), base))
          << kernels::TierName(tier) << " n " << n;
    }
  }
}

TEST(TuningTest, FirstUseBenchmarksThenCaches) {
  KernelTuner tuner;
  int bench_calls = 0;
  const std::vector<GemmChoice> candidates = {
      {4, 64}, {8, 128}, {16, 256}};
  auto bench = [&](const GemmChoice& c) {
    ++bench_calls;
    return c.jblock == 8 ? 1.0 : 2.0;  // make {8,128} the winner
  };
  const GemmChoice first = tuner.GetGemm("avx2:k31:n64:m4096", candidates,
                                         bench);
  EXPECT_EQ(first.jblock, 8);
  EXPECT_EQ(first.kpanel, 128);
  EXPECT_EQ(bench_calls, 3);
  EXPECT_EQ(tuner.benchmark_runs(), 1);
  // Second call must hit the cache without re-benchmarking.
  const GemmChoice again = tuner.GetGemm(
      "avx2:k31:n64:m4096", candidates, [](const GemmChoice&) {
        ADD_FAILURE() << "cached entry re-benchmarked";
        return 0.0;
      });
  EXPECT_EQ(again.jblock, 8);
  EXPECT_EQ(tuner.benchmark_runs(), 1);
}

TEST(TuningTest, ProfileRoundTripSkipsRebenchmark) {
  KernelTuner tuner;
  tuner.GetGemm("avx512:k64:n64:m4096", {{8, 64}, {32, 256}},
                [](const GemmChoice& c) { return c.jblock == 32 ? 1.0 : 2.0; });
  tuner.GetSpmm("avx512:r4096:z16384:c64", {{8, false}, {16, true}},
                [](const SpmmChoice& c) { return c.nnz_split ? 1.0 : 2.0; });
  tuner.GetGemmTransA("avx512:ta:k64:n64:m4096", {{0, 0}, {16, 0}},
                      [](const GemmChoice& c) { return c.jblock == 16 ? 1.0 : 2.0; });
  tuner.GetGemmTransB("avx512:tb:k64:n64:m4096", {{0, 0}, {32, 0}},
                      [](const GemmChoice& c) { return c.jblock == 0 ? 1.0 : 2.0; });
  EXPECT_EQ(tuner.entries(), 4);
  EXPECT_EQ(tuner.benchmark_runs(), 4);

  const std::string profile = tuner.Serialize();
  EXPECT_EQ(profile.rfind("ahg-tuning 1\n", 0), 0u);

  KernelTuner reloaded;
  ASSERT_TRUE(reloaded.Deserialize(profile));
  EXPECT_EQ(reloaded.entries(), 4);
  EXPECT_EQ(reloaded.benchmark_runs(), 0);  // loading is not benchmarking
  GemmChoice g;
  ASSERT_TRUE(reloaded.LookupGemm("avx512:k64:n64:m4096", &g));
  EXPECT_EQ(g.jblock, 32);
  EXPECT_EQ(g.kpanel, 256);
  SpmmChoice s;
  ASSERT_TRUE(reloaded.LookupSpmm("avx512:r4096:z16384:c64", &s));
  EXPECT_EQ(s.cblock, 16);
  EXPECT_TRUE(s.nnz_split);
  GemmChoice ta;
  ASSERT_TRUE(reloaded.LookupGemmTransA("avx512:ta:k64:n64:m4096", &ta));
  EXPECT_EQ(ta.jblock, 16);
  GemmChoice tb;
  ASSERT_TRUE(reloaded.LookupGemmTransB("avx512:tb:k64:n64:m4096", &tb));
  EXPECT_EQ(tb.jblock, 0);
  // The transposed kinds live in separate tables: a gemm_ta key must not
  // answer a plain gemm lookup.
  EXPECT_FALSE(reloaded.LookupGemm("avx512:ta:k64:n64:m4096", &g));
  // The reloaded tuner serves the same variant with no benchmark callback
  // invocation at all.
  const GemmChoice served = reloaded.GetGemm(
      "avx512:k64:n64:m4096", {{8, 64}, {32, 256}}, [](const GemmChoice&) {
        ADD_FAILURE() << "profile entry re-benchmarked after reload";
        return 0.0;
      });
  EXPECT_EQ(served.jblock, 32);
  EXPECT_EQ(reloaded.benchmark_runs(), 0);
}

TEST(TuningTest, SaveLoadFileRoundTrip) {
  const char* base = std::getenv("TMPDIR");
  const std::string path =
      std::string(base ? base : "/tmp") + "/ahg_kernels_test_tuning.ahgt";
  KernelTuner tuner;
  tuner.PutGemm("scalar:k8:n8:m64", GemmChoice{4, 64});
  tuner.PutSpmm("scalar:r64:z256:c8", SpmmChoice{8, true});
  tuner.PutGemmTransA("scalar:ta:k8:n8:m64", GemmChoice{8, 0});
  tuner.PutGemmTransB("scalar:tb:k8:n8:m64", GemmChoice{16, 0});
  ASSERT_TRUE(tuner.SaveFile(path));
  KernelTuner loaded;
  ASSERT_TRUE(loaded.LoadFile(path));
  GemmChoice g;
  ASSERT_TRUE(loaded.LookupGemm("scalar:k8:n8:m64", &g));
  EXPECT_EQ(g.jblock, 4);
  SpmmChoice s;
  ASSERT_TRUE(loaded.LookupSpmm("scalar:r64:z256:c8", &s));
  EXPECT_TRUE(s.nnz_split);
  GemmChoice ta;
  ASSERT_TRUE(loaded.LookupGemmTransA("scalar:ta:k8:n8:m64", &ta));
  EXPECT_EQ(ta.jblock, 8);
  GemmChoice tb;
  ASSERT_TRUE(loaded.LookupGemmTransB("scalar:tb:k8:n8:m64", &tb));
  EXPECT_EQ(tb.jblock, 16);
  EXPECT_FALSE(loaded.LoadFile(path + ".does_not_exist"));
  std::remove(path.c_str());
}

TEST(TuningTest, DisabledAutotunePicksFirstCandidateWithoutBenchmark) {
  KernelTuner tuner;
  kernels::SetAutotuneEnabled(false);
  const GemmChoice c = tuner.GetGemm(
      "scalar:k4:n4:m16", {{1, 64}, {8, 256}}, [](const GemmChoice&) {
        ADD_FAILURE() << "benchmarked with autotune disabled";
        return 0.0;
      });
  kernels::SetAutotuneEnabled(true);
  EXPECT_EQ(c.jblock, 1);
  EXPECT_EQ(tuner.benchmark_runs(), 0);
}

TEST(TuningTest, MalformedProfileRejectedOrSkipped) {
  KernelTuner tuner;
  EXPECT_FALSE(tuner.Deserialize("not-a-profile\n"));
  EXPECT_FALSE(tuner.Deserialize(""));
  // Bad rows and unknown kinds are skipped; good rows still load.
  ASSERT_TRUE(tuner.Deserialize(
      "ahg-tuning 1\n"
      "gemm\tscalar:k2:n2:m2\t4\t64\n"
      "gemm\tbroken-row\n"
      "frobnicate\tx\t1\t2\n"
      "spmm\tscalar:r2:z2:c2\tnot-a-number\t1\n"));
  EXPECT_EQ(tuner.entries(), 1);
}

}  // namespace
}  // namespace ahg
