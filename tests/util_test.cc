#include <atomic>

#include "gtest/gtest.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace ahg {
namespace {

TEST(StrSplitTest, SplitsAndKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StrTrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(StrTrim("  x y \t\n"), "x y");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(FormatFloatTest, Precision) {
  EXPECT_EQ(FormatFloat(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFloat(2.0, 0), "2");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  ASSERT_GE(sink, 0.0);
  EXPECT_GT(watch.ElapsedSeconds(), 0.0);
  const double before = watch.ElapsedSeconds();
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), before + 1.0);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ParallelForTest, CoversRangeSequentially) {
  std::vector<int> hits(20, 0);
  ParallelFor(20, 1, [&](int i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, CoversRangeThreaded) {
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(100, 4, [&](int i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterationsIsNoop) {
  ParallelFor(0, 4, [](int) { FAIL(); });
}

}  // namespace
}  // namespace ahg
