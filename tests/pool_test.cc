// Memory-plane fast path: MatrixPool recycling, arena trimming,
// AllocTracker accounting, fused-kernel bitwise identity and the
// steady-state zero-allocation guarantee for training steps.
#include "tensor/pool.h"

#include <cstring>
#include <thread>
#include <vector>

#include "autodiff/ops.h"
#include "graph/split.h"
#include "graph/synthetic.h"
#include "gtest/gtest.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "serve/inference_engine.h"
#include "tasks/train_node.h"
#include "tensor/alloc_tracker.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace ahg {
namespace {

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(double)) == 0;
}

TEST(MatrixPoolTest, HitReturnsZeroedRecycledBuffer) {
  ScopedMemPlane plane(/*pooling=*/true, /*fusion=*/false);
  const MatrixPoolStats before = MatrixPool::Global().Stats();
  const double* first;
  {
    Matrix m(7, 13);
    m.Fill(3.5);
    first = m.data();
  }
  Matrix n(7, 13);  // same element count -> must recycle the same buffer
  EXPECT_EQ(n.data(), first);
  for (int64_t i = 0; i < n.size(); ++i) EXPECT_EQ(n.data()[i], 0.0);
  const MatrixPoolStats after = MatrixPool::Global().Stats();
  EXPECT_GE(after.hits, before.hits + 1);
}

TEST(MatrixPoolTest, PooledBufferReturnsToPoolAfterFlagOff) {
  Matrix m;
  {
    ScopedMemPlane plane(/*pooling=*/true, /*fusion=*/false);
    m = Matrix(5, 5);
  }
  // Pooling is off again, but the buffer is pool-origin: destroying the
  // matrix must hand it back to the pool, not the heap.
  const MatrixPoolStats before = MatrixPool::Global().Stats();
  m = Matrix();
  const MatrixPoolStats after = MatrixPool::Global().Stats();
  EXPECT_EQ(after.released, before.released + 1);
}

TEST(MatrixPoolTest, ArenaTrimsBackToEntryWatermark) {
  ScopedMemPlane plane(/*pooling=*/true, /*fusion=*/false);
  const int64_t idle_before = MatrixPool::Global().IdleBytes();
  {
    ScopedArena arena;
    { Matrix big(64, 257); }  // an idle size no other test uses
    EXPECT_GT(MatrixPool::Global().IdleBytes(), idle_before);
  }
  EXPECT_EQ(MatrixPool::Global().IdleBytes(), idle_before);
}

TEST(MatrixPoolTest, PoolHitsDoNotCountAsHeapAllocations) {
  ScopedMemPlane plane(/*pooling=*/true, /*fusion=*/false);
  { Matrix warm(11, 17); }  // seed the bucket (may heap-allocate)
  const int64_t count_before = AllocTracker::AllocationCount();
  { Matrix hit(11, 17); }
  EXPECT_EQ(AllocTracker::AllocationCount(), count_before);
}

TEST(MatrixPoolTest, ConcurrentAcquireReleaseAndCrossThreadFree) {
  // Hammers the pool from several threads (TSan/ASan coverage) including
  // buffers allocated on one thread and destroyed on another.
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<Matrix> handoff(kThreads);
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([t, &handoff] {
        ScopedMemPlane plane(/*pooling=*/true, /*fusion=*/false);
        for (int i = 0; i < kIters; ++i) {
          Matrix a(3 + (i % 5), 8);
          Matrix b(16, 16);
          a.Fill(1.0);
          b.Fill(2.0);
        }
        handoff[t] = Matrix(9, 9);  // destroyed by the main thread below
        handoff[t].Fill(static_cast<double>(t));
      });
    }
    for (auto& w : workers) w.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(handoff[t](0, 0), static_cast<double>(t));
    handoff[t] = Matrix();  // cross-thread release
  }
}

TEST(AllocTrackerTest, AllocationCountAndTotalBytesAreMonotonic) {
  const int64_t count_before = AllocTracker::AllocationCount();
  const int64_t total_before = AllocTracker::TotalAllocatedBytes();
  { Matrix m(6, 10); }
  EXPECT_EQ(AllocTracker::AllocationCount(), count_before + 1);
  EXPECT_EQ(AllocTracker::TotalAllocatedBytes(),
            total_before + 6 * 10 * static_cast<int64_t>(sizeof(double)));
}

TEST(AllocTrackerTest, ResetPeakLowersToCurrent) {
  Matrix keep(4, 4);
  { Matrix transient(128, 128); }
  EXPECT_GT(AllocTracker::PeakBytes(), AllocTracker::CurrentBytes());
  AllocTracker::ResetPeak();
  EXPECT_EQ(AllocTracker::PeakBytes(), AllocTracker::CurrentBytes());
}

TEST(AllocTrackerTest, ResetPeakRaceKeepsPeakAboveCurrent) {
  // Regression for the blind-store ResetPeak: concurrent Add/Remove while
  // another thread resets must never leave peak < current.
  std::atomic<bool> stop{false};
  std::thread churn([&stop] {
    while (!stop.load()) {
      Matrix a(32, 32);
      Matrix b(64, 64);
    }
  });
  for (int i = 0; i < 2000; ++i) {
    AllocTracker::ResetPeak();
    EXPECT_GE(AllocTracker::PeakBytes(), 0);
  }
  stop.store(true);
  churn.join();
  EXPECT_GE(AllocTracker::PeakBytes(), AllocTracker::CurrentBytes());
}

TEST(FusedOpsTest, LinearReluMatchesUnfusedChainBitwise) {
  Rng rng(11);
  for (bool with_bias : {true, false}) {
    Matrix xv = Matrix::Gaussian(9, 6, 1.0, &rng);
    Matrix wv = Matrix::Gaussian(6, 5, 1.0, &rng);
    Matrix bv = Matrix::Gaussian(1, 5, 1.0, &rng);

    auto run = [&](bool fused) {
      Var x = MakeParam(xv);
      Var w = MakeParam(wv);
      Var b = with_bias ? MakeParam(bv) : Var();
      Var out;
      if (fused) {
        out = LinearRelu(x, w, b);
      } else {
        Var pre = MatMul(x, w);
        if (b) pre = AddRowVector(pre, b);
        out = Relu(pre);
      }
      Backward(SumAll(out));
      std::vector<Matrix> r = {out->value, x->grad, w->grad};
      if (b) r.push_back(b->grad);
      return r;
    };

    const std::vector<Matrix> unfused = run(false);
    const std::vector<Matrix> fused = run(true);
    ASSERT_EQ(unfused.size(), fused.size());
    for (size_t i = 0; i < unfused.size(); ++i) {
      EXPECT_TRUE(BitwiseEqual(unfused[i], fused[i]))
          << "with_bias=" << with_bias << " tensor " << i;
    }
  }
}

TEST(FusedOpsTest, MaskedCrossEntropyFusionIsBitwiseIdentical) {
  Rng rng(5);
  Matrix logits_v = Matrix::Gaussian(20, 4, 1.5, &rng);
  std::vector<int> labels(20);
  for (int i = 0; i < 20; ++i) labels[i] = i % 4;
  std::vector<int> mask = {0, 3, 7, 11, 19};

  auto run = [&](bool fusion) {
    ScopedMemPlane plane(/*pooling=*/false, fusion);
    Var logits = MakeParam(logits_v);
    Var loss = MaskedCrossEntropy(logits, labels, mask);
    Backward(loss);
    return std::vector<Matrix>{loss->value, logits->grad};
  };

  const auto off = run(false);
  const auto on = run(true);
  EXPECT_TRUE(BitwiseEqual(off[0], on[0]));
  EXPECT_TRUE(BitwiseEqual(off[1], on[1]));
}

Graph SmallGraph(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_nodes = 120;
  cfg.num_classes = 3;
  cfg.feature_dim = 10;
  cfg.avg_degree = 4.0;
  cfg.homophily = 0.8;
  cfg.feature_signal = 1.0;
  cfg.seed = seed;
  return GenerateSbmGraph(cfg);
}

ModelConfig ZooConfig(ModelFamily family) {
  ModelConfig cfg;
  cfg.family = family;
  cfg.hidden_dim = 12;
  cfg.num_layers = 2;
  cfg.dropout = 0.3;
  cfg.seed = 2;
  return cfg;
}

// Training with pooling + fusion on must reproduce the plain run bitwise,
// for every exercised zoo family and across kernel thread counts.
TEST(MemPlaneBitwiseTest, TrainedProbsIdenticalAcrossPoolFusionAndThreads) {
  const Graph g = SmallGraph(21);
  Rng rng(4);
  DataSplit split = RandomSplit(g, 0.5, 0.2, &rng);
  const ModelFamily families[] = {ModelFamily::kGcn,   ModelFamily::kMlp,
                                  ModelFamily::kTagcn, ModelFamily::kGin,
                                  ModelFamily::kGcnii, ModelFamily::kJkMax};
  for (ModelFamily family : families) {
    TrainConfig base;
    base.max_epochs = 6;
    base.patience = 6;
    base.seed = 9;
    base.num_threads = 1;
    const NodeTrainResult plain =
        TrainSingleNodeModel(ZooConfig(family), g, split, base);
    for (int threads : {1, 2, 4}) {
      TrainConfig fast = base;
      fast.pooling = true;
      fast.fusion = true;
      fast.num_threads = threads;
      const NodeTrainResult pooled =
          TrainSingleNodeModel(ZooConfig(family), g, split, fast);
      EXPECT_TRUE(BitwiseEqual(plain.probs, pooled.probs))
          << ModelFamilyName(family) << " threads=" << threads;
      EXPECT_EQ(plain.best_epoch, pooled.best_epoch)
          << ModelFamilyName(family) << " threads=" << threads;
    }
  }
}

// The frozen serving forward (inference mode: fused + in-place elementwise)
// must also be bitwise identical with the memory plane on.
TEST(MemPlaneBitwiseTest, ServedProbsIdenticalWithPoolingAndFusion) {
  const Graph g = SmallGraph(33);
  const ModelFamily families[] = {ModelFamily::kGcn, ModelFamily::kTagcn,
                                  ModelFamily::kGin, ModelFamily::kGcnii,
                                  ModelFamily::kGatedGnn, ModelFamily::kArma};
  for (ModelFamily family : families) {
    serve::ServableModel model;
    model.version = 1;
    model.num_classes = g.num_classes();
    model.config = ZooConfig(family);
    model.config.in_dim = g.feature_dim();
    std::unique_ptr<GnnModel> zoo = BuildModel(model.config);
    Rng head_rng(7);
    Linear head(zoo->params(), model.config.hidden_dim, model.num_classes,
                /*bias=*/true, &head_rng);
    model.params = zoo->params()->Snapshot();

    serve::EngineOptions plain_opts;
    serve::InferenceEngine plain(&g, plain_opts);
    serve::EngineOptions fast_opts;
    fast_opts.pooling = true;
    fast_opts.fusion = true;
    serve::InferenceEngine fast(&g, fast_opts);

    auto a = plain.PredictAll(model);
    auto b = fast.PredictAll(model);
    ASSERT_TRUE(a.ok() && b.ok()) << ModelFamilyName(family);
    EXPECT_TRUE(BitwiseEqual(a.value(), b.value())) << ModelFamilyName(family);
  }
}

// The acceptance bar for the memory plane: after warm-up, a full GCN train
// step (forward, loss, backward, Adam) performs zero tensor heap
// allocations — every buffer is a pool hit.
TEST(MemPlaneSteadyStateTest, GcnTrainStepAllocatesNothingAfterWarmup) {
  const Graph g = SmallGraph(55);
  Rng split_rng(3);
  DataSplit split = RandomSplit(g, 0.5, 0.2, &split_rng);

  ScopedMemPlane plane(/*pooling=*/true, /*fusion=*/true);
  ScopedArena arena;

  ModelConfig cfg = ZooConfig(ModelFamily::kGcn);
  cfg.in_dim = g.feature_dim();
  std::unique_ptr<GnnModel> model = BuildModel(cfg);
  Rng init_rng(cfg.seed ^ 0x9e3779b9ULL);
  Linear head(model->params(), cfg.hidden_dim, g.num_classes(),
              /*bias=*/true, &init_rng);
  Adam optimizer(model->params()->params(), AdamConfig{});
  Rng dropout_rng(17);
  Var features = MakeConstant(g.features());

  auto step = [&] {
    model->params()->ZeroGrad();
    GnnContext ctx;
    ctx.graph = &g;
    ctx.training = true;
    ctx.rng = &dropout_rng;
    Var logits = head.Apply(model->LayerOutputs(ctx, features).back());
    Var loss = MaskedCrossEntropy(logits, g.labels(), split.train);
    Backward(loss);
    optimizer.Step();
  };

  for (int i = 0; i < 3; ++i) step();  // warm the pool + Adam state
  const int64_t allocs_before = AllocTracker::AllocationCount();
  const MatrixPoolStats pool_before = MatrixPool::Global().Stats();
  for (int i = 0; i < 2; ++i) step();
  EXPECT_EQ(AllocTracker::AllocationCount(), allocs_before)
      << "steady-state train step hit the heap";
  const MatrixPoolStats pool_after = MatrixPool::Global().Stats();
  EXPECT_EQ(pool_after.misses, pool_before.misses);
  EXPECT_GT(pool_after.hits, pool_before.hits);
}

}  // namespace
}  // namespace ahg
