#include "util/rng.h"

#include <algorithm>
#include <set>

#include "gtest/gtest.h"

namespace ahg {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInRangeAndCoversAll) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(5);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(19);
  std::vector<int> sample = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (int s : sample) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 100);
  }
}

TEST(RngTest, SampleFullRangeIsPermutation) {
  Rng rng(23);
  std::vector<int> sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng forked = a.Fork();
  // The fork differs from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == forked.Next();
  EXPECT_LT(same, 4);
}

}  // namespace
}  // namespace ahg
