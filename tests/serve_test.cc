// The serving subsystem: propagation cache semantics (compute-once, LRU
// byte budget, concurrent cold starts), registry publish/refresh/hot-swap,
// frozen-path vs training-path equivalence, and the request batcher's
// deadline / admission-control / determinism contracts. The batcher and
// cache tests also run under TSan in CI.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "graph/synthetic.h"
#include "gtest/gtest.h"
#include "nn/linear.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "serve/propagation_cache.h"
#include "serve/request_batcher.h"
#include "serve/serve_stats.h"

namespace ahg::serve {
namespace {

std::string FreshDir(const std::string& name) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base ? base : "/tmp") + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Graph SmallGraph(uint64_t seed = 7) {
  SyntheticConfig cfg;
  cfg.num_nodes = 48;
  cfg.num_classes = 3;
  cfg.feature_dim = 6;
  cfg.avg_degree = 3.0;
  cfg.seed = seed;
  return GenerateSbmGraph(cfg);
}

// Builds an (untrained) model + head for `graph` and snapshots its weights
// into a ServableModel — identical layout to a trained member.
ServableModel MakeServable(const Graph& graph, int version,
                           ModelFamily family = ModelFamily::kGcn,
                           uint64_t seed = 11) {
  ServableModel model;
  model.version = version;
  model.num_classes = graph.num_classes();
  model.config.family = family;
  model.config.in_dim = graph.feature_dim();
  model.config.hidden_dim = 8;
  model.config.num_layers = 2;
  model.config.seed = seed;
  std::unique_ptr<GnnModel> zoo = BuildModel(model.config);
  Rng head_rng(model.config.seed ^ 0x5ca1ab1eULL);
  Linear head(zoo->params(), model.config.hidden_dim, model.num_classes,
              /*bias=*/true, &head_rng);
  model.params = zoo->params()->Snapshot();
  return model;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double max_diff = 0.0;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      max_diff = std::max(max_diff, std::fabs(a(r, c) - b(r, c)));
    }
  }
  return max_diff;
}

TEST(PropagationCacheTest, ComputesOnceAndCountsHits) {
  PropagationCache cache(/*byte_budget=*/0);
  int computes = 0;
  auto compute = [&computes] {
    ++computes;
    return Matrix::Constant(4, 4, 1.0);
  };
  auto first = cache.GetOrCompute("k", compute);
  auto second = cache.GetOrCompute("k", compute);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.current_bytes(), 4 * 4 * 8);
}

TEST(PropagationCacheTest, LruEvictionUnderByteBudget) {
  // Budget fits exactly two 4x4 entries.
  PropagationCache cache(2 * 4 * 4 * 8);
  auto make = [](double v) { return [v] { return Matrix::Constant(4, 4, v); }; };
  cache.GetOrCompute("a", make(1.0));
  cache.GetOrCompute("b", make(2.0));
  cache.GetOrCompute("a", make(1.0));  // refresh a's LRU tick
  cache.GetOrCompute("c", make(3.0));  // evicts b
  EXPECT_EQ(cache.num_entries(), 2);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_LE(cache.current_bytes(), cache.byte_budget());
  // a survived, b was the victim.
  EXPECT_EQ(cache.hits(), 1);
  cache.GetOrCompute("a", make(1.0));
  EXPECT_EQ(cache.hits(), 2);
  cache.GetOrCompute("b", make(2.0));
  EXPECT_EQ(cache.misses(), 4);
}

TEST(PropagationCacheTest, ConcurrentColdStartComputesOnce) {
  PropagationCache cache(/*byte_budget=*/0);
  std::atomic<int> computes{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const Matrix>> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &computes, &results, t] {
      results[t] = cache.GetOrCompute("shared", [&computes] {
        ++computes;
        return Matrix::Constant(8, 8, 3.0);
      });
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(computes.load(), 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t].get(), results[0].get());
  }
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), kThreads - 1);
}

// Regression test: a compute() that throws used to leave an unfulfilled
// promise in the map — every later caller of the same key hung or got a
// broken_promise, permanently poisoning the key. Now the owner erases the
// in-flight entry, forwards the exception to registered waiters, and the
// next call recomputes cleanly.
TEST(PropagationCacheTest, ThrowingComputeDoesNotPoisonKey) {
  PropagationCache cache(/*byte_budget=*/0);
  std::atomic<int> computes{0};
  std::atomic<int> exceptions{0};
  std::promise<void> release_owner;
  std::shared_future<void> go = release_owner.get_future().share();
  constexpr int kWaiters = 4;
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    try {
      cache.GetOrCompute("k", [&]() -> Matrix {
        ++computes;
        go.wait();  // hold the in-flight entry until all waiters registered
        throw std::runtime_error("propagation failed");
      });
    } catch (const std::runtime_error&) {
      ++exceptions;
    }
  });
  while (cache.misses() < 1) std::this_thread::yield();
  for (int t = 0; t < kWaiters; ++t) {
    threads.emplace_back([&] {
      try {
        cache.GetOrCompute("k", [&]() -> Matrix {
          ++computes;
          return Matrix::Constant(2, 2, 1.0);
        });
      } catch (const std::runtime_error&) {
        ++exceptions;
      }
    });
  }
  // All waiters share the owner's future before the failure lands.
  while (cache.hits() < kWaiters) std::this_thread::yield();
  release_owner.set_value();
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(exceptions.load(), 1 + kWaiters);
  EXPECT_EQ(cache.num_entries(), 0);
  EXPECT_EQ(cache.current_bytes(), 0);
  // The key recovers: the next call recomputes and caches normally.
  auto value = cache.GetOrCompute("k", [&] {
    ++computes;
    return Matrix::Constant(2, 2, 5.0);
  });
  EXPECT_EQ(computes.load(), 2);
  EXPECT_DOUBLE_EQ((*value)(0, 0), 5.0);
  EXPECT_EQ(cache.num_entries(), 1);
}

TEST(PropagationCacheTest, InvalidateDropsEntry) {
  PropagationCache cache(/*byte_budget=*/0);
  int computes = 0;
  auto compute = [&computes] {
    ++computes;
    return Matrix::Constant(2, 2, 1.0);
  };
  auto held = cache.GetOrCompute("k", compute);
  cache.Invalidate("k");
  EXPECT_EQ(cache.current_bytes(), 0);
  cache.GetOrCompute("k", compute);
  EXPECT_EQ(computes, 2);
  // The old handle stays valid after invalidation.
  EXPECT_DOUBLE_EQ((*held)(0, 0), 1.0);
}

TEST(ModelRegistryTest, PublishRefreshServesHighestVersion) {
  Graph graph = SmallGraph();
  const std::string dir = FreshDir("serve_registry_basic");
  ServableModel v1 = MakeServable(graph, 1, ModelFamily::kGcn, 11);
  ServableModel v2 = MakeServable(graph, 2, ModelFamily::kAppnp, 12);
  ASSERT_TRUE(ModelRegistry::Publish(dir, 1, v1.config, v1.params,
                                     v1.num_classes)
                  .ok());
  ASSERT_TRUE(ModelRegistry::Publish(dir, 2, v2.config, v2.params,
                                     v2.num_classes)
                  .ok());
  ModelRegistry registry(dir);
  ASSERT_TRUE(registry.Refresh().ok());
  EXPECT_EQ(registry.active_version(), 2);
  EXPECT_EQ(registry.Versions(), (std::vector<int>{1, 2}));
  ASSERT_NE(registry.Version(1), nullptr);
  EXPECT_EQ(registry.Version(1)->config.family, ModelFamily::kGcn);
  EXPECT_EQ(registry.Version(3), nullptr);
  EXPECT_TRUE(registry.ValidateCompatibility(graph).ok());
}

TEST(ModelRegistryTest, RefreshHotSwapsWhileOldHandleStaysValid) {
  Graph graph = SmallGraph();
  const std::string dir = FreshDir("serve_registry_swap");
  ServableModel v1 = MakeServable(graph, 1);
  ASSERT_TRUE(ModelRegistry::Publish(dir, 1, v1.config, v1.params,
                                     v1.num_classes)
                  .ok());
  ModelRegistry registry(dir);
  ASSERT_TRUE(registry.Refresh().ok());
  std::shared_ptr<const ServableModel> old_active = registry.Active();
  ASSERT_NE(old_active, nullptr);
  EXPECT_EQ(old_active->version, 1);

  ServableModel v2 = MakeServable(graph, 2, ModelFamily::kSgc, 21);
  ASSERT_TRUE(ModelRegistry::Publish(dir, 2, v2.config, v2.params,
                                     v2.num_classes)
                  .ok());
  ASSERT_TRUE(registry.Refresh().ok());
  EXPECT_EQ(registry.Active()->version, 2);
  // An in-flight batch pinning v1 keeps serving it.
  EXPECT_EQ(old_active->version, 1);
  EXPECT_EQ(old_active->config.family, ModelFamily::kGcn);
}

TEST(ModelRegistryTest, MissingManifestIsNotFound) {
  ModelRegistry registry(FreshDir("serve_registry_missing"));
  EXPECT_EQ(registry.Refresh().code(), Status::Code::kNotFound);
  EXPECT_EQ(registry.Active(), nullptr);
  EXPECT_EQ(registry.active_version(), 0);
}

TEST(ModelRegistryTest, RejectsManifestHeadMismatch) {
  Graph graph = SmallGraph();
  const std::string dir = FreshDir("serve_registry_corrupt");
  ServableModel v1 = MakeServable(graph, 1);
  ASSERT_TRUE(ModelRegistry::Publish(dir, 1, v1.config, v1.params,
                                     v1.num_classes)
                  .ok());
  // Manifest claims a class count the stored head cannot produce.
  {
    std::ofstream manifest(dir + "/registry.tsv", std::ios::trunc);
    manifest << "ahg-registry\t1\n1\tmodel_v1.ahgm\t7\n";
  }
  ModelRegistry registry(dir);
  Status s = registry.Refresh();
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(registry.Active(), nullptr);
}

TEST(ModelRegistryTest, PublishRejectsTruncatedParams) {
  Graph graph = SmallGraph();
  ServableModel model = MakeServable(graph, 1);
  model.params.pop_back();  // drop the head bias
  EXPECT_EQ(ModelRegistry::Publish(FreshDir("serve_registry_bad"), 1,
                                   model.config, model.params,
                                   model.num_classes)
                .code(),
            Status::Code::kInvalidArgument);
}

TEST(ModelRegistryTest, ValidateCompatibilityRejectsWrongGraph) {
  Graph graph = SmallGraph();
  const std::string dir = FreshDir("serve_registry_compat");
  ServableModel v1 = MakeServable(graph, 1);
  ASSERT_TRUE(ModelRegistry::Publish(dir, 1, v1.config, v1.params,
                                     v1.num_classes)
                  .ok());
  ModelRegistry registry(dir);
  ASSERT_TRUE(registry.Refresh().ok());
  SyntheticConfig other;
  other.num_nodes = 30;
  other.num_classes = 3;
  other.feature_dim = 9;  // wrong width
  Graph incompatible = GenerateSbmGraph(other);
  EXPECT_EQ(registry.ValidateCompatibility(incompatible).code(),
            Status::Code::kInvalidArgument);
}

TEST(InferenceEngineTest, MatchesTrainingPathBitwise) {
  Graph graph = SmallGraph();
  for (ModelFamily family :
       {ModelFamily::kGcn, ModelFamily::kAppnp, ModelFamily::kGat}) {
    ServableModel model = MakeServable(graph, 1, family, 31);
    ServeStats stats;
    InferenceEngine engine(&graph, EngineOptions{}, &stats);
    auto served = engine.PredictAll(model);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    Matrix training = InferenceEngine::TrainingPathProbs(model, graph);
    EXPECT_EQ(MaxAbsDiff(served.value(), training), 0.0)
        << "family " << ModelFamilyName(family);
  }
}

TEST(InferenceEngineTest, GatheredBatchMatchesFullRows) {
  Graph graph = SmallGraph();
  ServableModel model = MakeServable(graph, 1);
  InferenceEngine engine(&graph, EngineOptions{});
  auto all = engine.PredictAll(model);
  ASSERT_TRUE(all.ok());
  const std::vector<int> nodes = {5, 0, 47, 5, 23};
  auto batch = engine.PredictNodes(model, nodes);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (int c = 0; c < graph.num_classes(); ++c) {
      EXPECT_EQ(batch.value()(static_cast<int>(i), c),
                all.value()(nodes[i], c));
    }
  }
}

TEST(InferenceEngineTest, SecondQueryHitsCache) {
  Graph graph = SmallGraph();
  ServableModel model = MakeServable(graph, 1);
  ServeStats stats;
  InferenceEngine engine(&graph, EngineOptions{}, &stats);
  ASSERT_TRUE(engine.Warm(model).ok());
  ASSERT_TRUE(engine.PredictNodes(model, {3}).ok());
  EXPECT_EQ(engine.cache().misses(), 1);
  EXPECT_EQ(engine.cache().hits(), 1);
  ServeStatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.cache_misses, 1);
  EXPECT_EQ(snap.cache_hits, 1);
  EXPECT_EQ(snap.cache_bytes, int64_t{graph.num_nodes()} *
                                  model.config.hidden_dim * 8);
}

TEST(InferenceEngineTest, RejectsBadInputs) {
  Graph graph = SmallGraph();
  ServableModel model = MakeServable(graph, 1);
  InferenceEngine engine(&graph, EngineOptions{});
  EXPECT_EQ(engine.PredictNodes(model, {graph.num_nodes()}).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(engine.PredictNodes(model, {-1}).status().code(),
            Status::Code::kInvalidArgument);
  ServableModel wrong = model;
  wrong.config.in_dim = model.config.in_dim + 1;
  EXPECT_EQ(engine.PredictNodes(wrong, {0}).status().code(),
            Status::Code::kInvalidArgument);
}

// End-to-end fixture: registry dir + engine + batcher over a small graph.
class BatcherFixture {
 public:
  explicit BatcherFixture(const std::string& name) : graph_(SmallGraph()) {
    dir_ = FreshDir(name);
    ServableModel v1 = MakeServable(graph_, 1);
    AHG_CHECK(ModelRegistry::Publish(dir_, 1, v1.config, v1.params,
                                     v1.num_classes)
                  .ok());
    registry_ = std::make_unique<ModelRegistry>(dir_);
    AHG_CHECK(registry_->Refresh().ok());
  }

  Graph graph_;
  std::string dir_;
  std::unique_ptr<ModelRegistry> registry_;
};

TEST(RequestBatcherTest, AnswersMatchDirectPrediction) {
  BatcherFixture fx("serve_batcher_basic");
  ServeStats stats;
  InferenceEngine engine(&fx.graph_, EngineOptions{}, &stats);
  BatcherOptions options;
  options.max_batch_size = 4;
  options.deadline_ms = 60000.0;
  RequestBatcher batcher(&engine, fx.registry_.get(), options, &stats);

  std::vector<std::future<QueryResult>> futures;
  for (int node = 0; node < fx.graph_.num_nodes(); ++node) {
    futures.push_back(batcher.Enqueue(node));
  }
  batcher.Drain();

  auto expected = engine.PredictAll(*fx.registry_->Active());
  ASSERT_TRUE(expected.ok());
  for (int node = 0; node < fx.graph_.num_nodes(); ++node) {
    QueryResult result = futures[node].get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    ASSERT_EQ(static_cast<int>(result.probs.size()),
              fx.graph_.num_classes());
    double sum = 0.0;
    for (int c = 0; c < fx.graph_.num_classes(); ++c) {
      EXPECT_EQ(result.probs[c], expected.value()(node, c));
      sum += result.probs[c];
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  ServeStatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.completed, fx.graph_.num_nodes());
  EXPECT_EQ(snap.deadline_violations, 0);
  EXPECT_EQ(snap.rejected, 0);
  EXPECT_GT(snap.qps, 0.0);
  EXPECT_GE(snap.p99_latency_ms, snap.p50_latency_ms);
  int64_t histogram_total = 0;
  for (int b = 0; b < kBatchHistogramBuckets; ++b) {
    histogram_total += snap.batch_size_histogram[b];
  }
  EXPECT_EQ(histogram_total, snap.batches);
}

// The acceptance contract: served outputs are bitwise identical across
// batcher pool sizes {1, 2, 4}. Each run uses a fresh engine (cold cache)
// so the propagation product itself is recomputed per thread count.
TEST(RequestBatcherTest, BitwiseIdenticalAcrossThreadCounts) {
  BatcherFixture fx("serve_batcher_determinism");
  std::vector<std::vector<double>> reference;
  for (int threads : {1, 2, 4}) {
    ServeStats stats;
    InferenceEngine engine(&fx.graph_, EngineOptions{}, &stats);
    BatcherOptions options;
    options.max_batch_size = 3;
    options.num_threads = threads;
    options.deadline_ms = 60000.0;
    RequestBatcher batcher(&engine, fx.registry_.get(), options, &stats);
    std::vector<std::future<QueryResult>> futures;
    for (int node = 0; node < fx.graph_.num_nodes(); ++node) {
      futures.push_back(batcher.Enqueue(node));
    }
    batcher.Drain();
    std::vector<std::vector<double>> outputs;
    for (auto& future : futures) {
      QueryResult result = future.get();
      ASSERT_TRUE(result.status.ok());
      outputs.push_back(std::move(result.probs));
    }
    if (reference.empty()) {
      reference = std::move(outputs);
    } else {
      ASSERT_EQ(outputs.size(), reference.size());
      for (size_t i = 0; i < outputs.size(); ++i) {
        ASSERT_EQ(outputs[i].size(), reference[i].size());
        for (size_t c = 0; c < outputs[i].size(); ++c) {
          EXPECT_EQ(outputs[i][c], reference[i][c])
              << "threads=" << threads << " node=" << i;
        }
      }
    }
  }
}

TEST(RequestBatcherTest, ExpiredDeadlineIsCountedAndReported) {
  BatcherFixture fx("serve_batcher_deadline");
  ServeStats stats;
  InferenceEngine engine(&fx.graph_, EngineOptions{}, &stats);
  BatcherOptions options;
  options.max_batch_size = 64;  // force all requests into the Flush() batch
  RequestBatcher batcher(&engine, fx.registry_.get(), options, &stats);
  std::vector<std::future<QueryResult>> futures;
  for (int node = 0; node < 8; ++node) {
    // A deadline no queue can meet.
    futures.push_back(batcher.Enqueue(node, /*deadline_ms=*/1e-9));
  }
  batcher.Drain();
  for (auto& future : futures) {
    EXPECT_EQ(future.get().status.code(), Status::Code::kDeadlineExceeded);
  }
  EXPECT_EQ(stats.Snapshot().deadline_violations, 8);
  EXPECT_EQ(stats.Snapshot().completed, 0);
}

// Regression test (ISSUE 6 satellite): the flusher used to race its delay
// clock against request deadlines — a request whose deadline fell inside
// max_queue_delay_ms was still packed into a batch and dispatched to the
// pool, where ExecuteBatch discovered the expiry after paying for the
// dispatch. The flusher now expires pending requests in place: the answer
// arrives near the deadline (not the delay bound) and no pool task runs.
TEST(RequestBatcherTest, FlusherExpiresDeadlinesWithoutDispatching) {
  BatcherFixture fx("serve_batcher_expiry_race");
  ServeStats stats;
  InferenceEngine engine(&fx.graph_, EngineOptions{}, &stats);
  BatcherOptions options;
  options.max_batch_size = 64;          // never cut on size
  options.max_queue_delay_ms = 60000.0; // delay clock far beyond the deadline
  RequestBatcher batcher(&engine, fx.registry_.get(), options, &stats);
  std::future<QueryResult> future = batcher.Enqueue(0, /*deadline_ms=*/20.0);
  // Only the flusher's deadline wake-up can answer this before the 60s
  // delay bound; the generous wait absorbs slow CI.
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  QueryResult result = future.get();
  EXPECT_EQ(result.status.code(), Status::Code::kDeadlineExceeded)
      << result.status.ToString();
  ServeStatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.deadline_violations, 1);
  EXPECT_EQ(snap.completed, 0);
  // The proof the request never reached the pool: no batch was executed
  // and the engine never computed (or even looked up) a propagation
  // product on its behalf.
  EXPECT_EQ(snap.batches, 0);
  EXPECT_EQ(snap.cache_misses, 0);
  EXPECT_EQ(snap.cache_hits, 0);
}

// Same contract on the Flush() path: expired requests are answered during
// Flush, not packed into the submitted batch, and live requests in the same
// queue still execute normally.
TEST(RequestBatcherTest, FlushExpiresStaleRequestsButServesLiveOnes) {
  BatcherFixture fx("serve_batcher_expiry_flush");
  ServeStats stats;
  InferenceEngine engine(&fx.graph_, EngineOptions{}, &stats);
  BatcherOptions options;
  options.max_batch_size = 64;
  options.max_queue_delay_ms = 0.0;  // no flusher: Flush owns expiry
  options.deadline_ms = 0.0;         // default: no deadline
  RequestBatcher batcher(&engine, fx.registry_.get(), options, &stats);
  std::future<QueryResult> stale = batcher.Enqueue(1, /*deadline_ms=*/1e-9);
  std::future<QueryResult> live = batcher.Enqueue(2);  // no deadline
  batcher.Drain();
  EXPECT_EQ(stale.get().status.code(), Status::Code::kDeadlineExceeded);
  QueryResult served = live.get();
  ASSERT_TRUE(served.status.ok()) << served.status.ToString();
  ServeStatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.deadline_violations, 1);
  EXPECT_EQ(snap.completed, 1);
  // Exactly one single-request batch executed — the stale request was
  // removed before the cut, not dispatched alongside the live one.
  EXPECT_EQ(snap.batches, 1);
  EXPECT_EQ(snap.batch_size_histogram[0], 1);
}

// Regression test: a batch smaller than max_batch_size used to sit in the
// queue until an explicit Flush()/Drain() — a lone request never completed.
// The background flusher now bounds queue residence by max_queue_delay_ms.
TEST(RequestBatcherTest, PartialBatchFlushedWithinQueueDelay) {
  BatcherFixture fx("serve_batcher_autoflush");
  ServeStats stats;
  InferenceEngine engine(&fx.graph_, EngineOptions{}, &stats);
  BatcherOptions options;
  options.max_batch_size = 64;  // a lone request never fills a batch
  options.max_queue_delay_ms = 25.0;
  options.deadline_ms = 60000.0;
  RequestBatcher batcher(&engine, fx.registry_.get(), options, &stats);
  std::future<QueryResult> future = batcher.Enqueue(3);
  // No Flush()/Drain(): only the flusher can complete this. The wait bound
  // is generous for slow CI; the point is that it completes at all.
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  QueryResult result = future.get();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(stats.Snapshot().completed, 1);
}

TEST(RequestBatcherTest, QueueLimitRejectsOverload) {
  BatcherFixture fx("serve_batcher_overload");
  ServeStats stats;
  InferenceEngine engine(&fx.graph_, EngineOptions{}, &stats);
  BatcherOptions options;
  options.max_batch_size = 1000;  // nothing drains until Flush
  options.queue_limit = 8;
  options.deadline_ms = 60000.0;
  options.max_queue_delay_ms = 0.0;  // no flusher: admission is deterministic
  RequestBatcher batcher(&engine, fx.registry_.get(), options, &stats);
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(batcher.Enqueue(i % fx.graph_.num_nodes()));
  }
  batcher.Drain();
  int ok = 0, rejected = 0;
  for (auto& future : futures) {
    QueryResult result = future.get();
    if (result.status.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(result.status.code(), Status::Code::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_EQ(ok, 8);
  EXPECT_EQ(rejected, 12);
  EXPECT_EQ(stats.Snapshot().rejected, 12);
}

TEST(RequestBatcherTest, NoActiveModelFailsRequests) {
  Graph graph = SmallGraph();
  ModelRegistry registry(FreshDir("serve_batcher_empty"));
  ServeStats stats;
  InferenceEngine engine(&graph, EngineOptions{}, &stats);
  BatcherOptions options;
  options.deadline_ms = 60000.0;
  RequestBatcher batcher(&engine, &registry, options, &stats);
  auto future = batcher.Enqueue(0);
  batcher.Drain();
  EXPECT_EQ(future.get().status.code(), Status::Code::kNotFound);
  EXPECT_EQ(stats.Snapshot().failed, 1);
}

TEST(ServeStatsTest, BucketLabelsAndReset) {
  EXPECT_EQ(ServeStatsSnapshot::BucketLabel(0), "1");
  EXPECT_EQ(ServeStatsSnapshot::BucketLabel(1), "2");
  EXPECT_EQ(ServeStatsSnapshot::BucketLabel(2), "3-4");
  EXPECT_EQ(ServeStatsSnapshot::BucketLabel(3), "5-8");
  EXPECT_EQ(ServeStatsSnapshot::BucketLabel(kBatchHistogramBuckets - 1),
            "129+");
  ServeStats stats;
  stats.RecordCompleted(1.0);
  stats.RecordCompleted(3.0);
  stats.RecordBatch(2);
  stats.RecordBatch(64);
  ServeStatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.completed, 2);
  EXPECT_EQ(snap.batches, 2);
  EXPECT_EQ(snap.batch_size_histogram[1], 1);
  EXPECT_EQ(snap.batch_size_histogram[6], 1);  // 33-64 bucket
  EXPECT_GE(snap.p99_latency_ms, snap.p50_latency_ms);
  EXPECT_FALSE(FormatStatsTable(snap).empty());
  stats.Reset();
  EXPECT_EQ(stats.Snapshot().total(), 0);
}

// Regression test: latencies used to accumulate in an unbounded vector that
// Snapshot() copied and sorted under the stats lock — O(completed) memory
// and O(n log n) snapshot cost under sustained traffic. Now a bounded
// reservoir (deterministic RNG) plus a running max keep both O(reservoir).
TEST(ServeStatsTest, LatencyReservoirIsBoundedAndDeterministic) {
  ServeStats stats;
  constexpr int kRequests = 100000;
  for (int i = 0; i < kRequests; ++i) {
    stats.RecordCompleted(static_cast<double>(i % 997));
  }
  stats.RecordCompleted(5000.0);
  ServeStatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.completed, kRequests + 1);
  EXPECT_LE(snap.latency_samples, ServeStats::kLatencyReservoirSize);
  EXPECT_GT(snap.latency_samples, 0);
  // The max is tracked outside the reservoir, so it is exact even when the
  // sample itself was not retained.
  EXPECT_DOUBLE_EQ(snap.max_latency_ms, 5000.0);
  EXPECT_GE(snap.p99_latency_ms, snap.p50_latency_ms);
  EXPECT_LE(snap.p99_latency_ms, snap.max_latency_ms);
  // Reservoir replacement uses a deterministic seeded RNG: two instances fed
  // the same stream report identical percentiles.
  ServeStats other;
  for (int i = 0; i < kRequests; ++i) {
    other.RecordCompleted(static_cast<double>(i % 997));
  }
  other.RecordCompleted(5000.0);
  ServeStatsSnapshot snap2 = other.Snapshot();
  EXPECT_EQ(snap.p50_latency_ms, snap2.p50_latency_ms);
  EXPECT_EQ(snap.p99_latency_ms, snap2.p99_latency_ms);
  EXPECT_EQ(snap.latency_samples, snap2.latency_samples);
}

}  // namespace
}  // namespace ahg::serve
