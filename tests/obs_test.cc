// The observability layer: TraceSpan nesting / thread attribution / ring
// overflow semantics, chrome://tracing JSON shape, histogram bucket edges,
// registry exports, and the contract that instrumentation enabled vs
// disabled does not change computed results bitwise. The trace and metrics
// record paths also run under TSan in CI.
#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "graph/synthetic.h"
#include "gtest/gtest.h"
#include "nn/linear.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/inference_engine.h"

namespace ahg::obs {
namespace {

// Each test starts from a clean, disabled recorder and leaves it that way;
// the recorder and enabled flag are process-global.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Instance().Disable();
    TraceRecorder::Instance().Drain();
  }
  void TearDown() override {
    TraceRecorder::Instance().Disable();
    TraceRecorder::Instance().Drain();
  }
};

const TraceEvent* FindEvent(const std::vector<TraceEvent>& events,
                            const std::string& name) {
  for (const TraceEvent& e : events) {
    if (e.name != nullptr && name == e.name) return &e;
  }
  return nullptr;
}

TEST_F(TraceTest, DisabledSpansEmitNothing) {
  {
    AHG_TRACE_SPAN("off/outer");
    AHG_TRACE_SPAN_ARG("off/inner", 42);
  }
  TraceRecorder::Instance().Emit("off/manual", 0, 1);  // Emit is unguarded
  std::vector<TraceEvent> events = TraceRecorder::Instance().Drain();
  EXPECT_EQ(FindEvent(events, "off/outer"), nullptr);
  EXPECT_EQ(FindEvent(events, "off/inner"), nullptr);
  // Only the explicit Emit (which callers themselves gate on
  // TracingEnabled()) landed.
  EXPECT_EQ(events.size(), 1u);
}

TEST_F(TraceTest, NestedSpansAndThreadAttribution) {
  TraceRecorder& recorder = TraceRecorder::Instance();
  recorder.Enable();
  {
    AHG_TRACE_SPAN("test/outer");
    {
      AHG_TRACE_SPAN_ARG("test/inner", 7);
    }
  }
  std::thread worker([] { AHG_TRACE_SPAN("test/worker"); });
  worker.join();
  std::vector<TraceEvent> events = recorder.Drain();

  const TraceEvent* outer = FindEvent(events, "test/outer");
  const TraceEvent* inner = FindEvent(events, "test/inner");
  const TraceEvent* from_worker = FindEvent(events, "test/worker");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(from_worker, nullptr);

  // The inner span nests inside the outer one on the timeline.
  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_LE(inner->start_us + inner->dur_us, outer->start_us + outer->dur_us);
  EXPECT_EQ(inner->arg, 7);
  EXPECT_EQ(outer->arg, -1);

  // Same thread -> same dense tid; the worker gets a different one, and its
  // events survive the thread's exit (the recorder keeps buffers alive).
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_NE(from_worker->tid, outer->tid);
}

TEST_F(TraceTest, RingOverflowDropsOldestAndCounts) {
  TraceRecorder& recorder = TraceRecorder::Instance();
  recorder.Enable();
  const size_t capacity = TraceRecorder::kThreadBufferCapacity;
  const size_t extra = 100;
  for (size_t i = 0; i < capacity + extra; ++i) {
    recorder.Emit("overflow/event", i, 1, static_cast<int64_t>(i));
  }
  EXPECT_EQ(recorder.dropped(), static_cast<int64_t>(extra));
  std::vector<TraceEvent> events = recorder.Drain();
  ASSERT_EQ(events.size(), capacity);
  // Oldest-first, and the survivors are the newest `capacity` events.
  EXPECT_EQ(events.front().arg, static_cast<int64_t>(extra));
  EXPECT_EQ(events.back().arg, static_cast<int64_t>(capacity + extra - 1));
  // Drain resets the dropped count.
  EXPECT_EQ(recorder.dropped(), 0);
}

TEST_F(TraceTest, ChromeTraceJsonShape) {
  TraceRecorder& recorder = TraceRecorder::Instance();
  recorder.Enable();
  {
    AHG_TRACE_SPAN_ARG("json/span", 13);
  }
  const std::string json = recorder.ChromeTraceJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.find_last_not_of(" \n"), json.rfind(']'));
  EXPECT_NE(json.find("\"name\":\"json/span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"v\":13}"), std::string::npos);
  // ChromeTraceJson drains: a second export holds no events.
  EXPECT_EQ(recorder.ChromeTraceJson().find("\"name\""), std::string::npos);
}

TEST(MetricsTest, CounterAndGaugeBasics) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42);
  Gauge gauge;
  gauge.Set(3.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.5);
  gauge.Set(-1.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), -1.0);
}

TEST(MetricsTest, HistogramBucketEdgesAreLessOrEqual) {
  Histogram histogram({1.0, 2.0, 5.0});
  histogram.Observe(1.0);  // == bound -> first bucket
  histogram.Observe(1.5);
  histogram.Observe(2.0);
  histogram.Observe(5.0);
  histogram.Observe(5.1);  // above last bound -> +inf bucket
  std::vector<int64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1);  // (-inf, 1]
  EXPECT_EQ(counts[1], 2);  // (1, 2]
  EXPECT_EQ(counts[2], 1);  // (2, 5]
  EXPECT_EQ(counts[3], 1);  // (5, +inf)
  EXPECT_EQ(histogram.TotalCount(), 5);
  EXPECT_NEAR(histogram.Sum(), 1.0 + 1.5 + 2.0 + 5.0 + 5.1, 1e-12);
}

TEST(MetricsTest, RegistryReturnsStableHandles) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x.count");
  Counter* b = registry.GetCounter("x.count");
  EXPECT_EQ(a, b);
  Histogram* h1 = registry.GetHistogram("x.hist", {1.0, 2.0});
  // Bounds are fixed by first registration; later bounds are ignored.
  Histogram* h2 = registry.GetHistogram("x.hist", {99.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsTest, ExportTsvAndText) {
  MetricsRegistry registry;
  registry.GetCounter("demo.requests")->Increment(3);
  registry.GetGauge("demo.bytes")->Set(128.0);
  Histogram* h = registry.GetHistogram("demo.lat_ms", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(7.0);
  h->Observe(100.0);

  const std::string tsv = registry.ExportTsv();
  EXPECT_NE(tsv.find("demo.requests\tcounter\t3"), std::string::npos);
  EXPECT_NE(tsv.find("demo.bytes\tgauge\t"), std::string::npos);
  EXPECT_NE(tsv.find("demo.lat_ms{le=1}\thistogram\t1"), std::string::npos);
  EXPECT_NE(tsv.find("demo.lat_ms{le=10}\thistogram\t1"), std::string::npos);
  EXPECT_NE(tsv.find("demo.lat_ms{le=+inf}\thistogram\t1"),
            std::string::npos);
  EXPECT_NE(tsv.find("demo.lat_ms_count\thistogram\t3"), std::string::npos);
  EXPECT_NE(tsv.find("demo.lat_ms_sum\thistogram\t"), std::string::npos);

  const std::string text = registry.ExportText();
  EXPECT_NE(text.find("demo.requests"), std::string::npos);
  EXPECT_NE(text.find("demo.lat_ms"), std::string::npos);
}

// Serving helper mirroring serve_test: an untrained-but-servable model.
serve::ServableModel MakeServable(const Graph& graph) {
  serve::ServableModel model;
  model.version = 1;
  model.num_classes = graph.num_classes();
  model.config.family = ModelFamily::kGcn;
  model.config.in_dim = graph.feature_dim();
  model.config.hidden_dim = 8;
  model.config.num_layers = 2;
  model.config.seed = 17;
  std::unique_ptr<GnnModel> zoo = BuildModel(model.config);
  Rng head_rng(model.config.seed ^ 0x5ca1ab1eULL);
  Linear head(zoo->params(), model.config.hidden_dim, model.num_classes,
              /*bias=*/true, &head_rng);
  model.params = zoo->params()->Snapshot();
  return model;
}

// The zero-interference contract: running the full serving path with tracing
// enabled produces bitwise-identical outputs to running it disabled, and the
// enabled run actually recorded the kernel + serve spans.
TEST_F(TraceTest, InstrumentationDoesNotChangeResults) {
  SyntheticConfig cfg;
  cfg.num_nodes = 48;
  cfg.num_classes = 3;
  cfg.feature_dim = 6;
  cfg.avg_degree = 3.0;
  cfg.seed = 7;
  Graph graph = GenerateSbmGraph(cfg);
  serve::ServableModel model = MakeServable(graph);

  serve::InferenceEngine cold(&graph, serve::EngineOptions{});
  auto disabled = cold.PredictAll(model);
  ASSERT_TRUE(disabled.ok());

  TraceRecorder& recorder = TraceRecorder::Instance();
  recorder.Enable();
  serve::InferenceEngine traced(&graph, serve::EngineOptions{});
  auto enabled = traced.PredictAll(model);
  recorder.Disable();
  ASSERT_TRUE(enabled.ok());

  ASSERT_EQ(disabled.value().rows(), enabled.value().rows());
  ASSERT_EQ(disabled.value().cols(), enabled.value().cols());
  for (int r = 0; r < disabled.value().rows(); ++r) {
    for (int c = 0; c < disabled.value().cols(); ++c) {
      EXPECT_EQ(disabled.value()(r, c), enabled.value()(r, c))
          << "row " << r << " col " << c;
    }
  }
  std::vector<TraceEvent> events = recorder.Drain();
  EXPECT_NE(FindEvent(events, "tensor/spmm"), nullptr);
  EXPECT_NE(FindEvent(events, "serve/cache_compute"), nullptr);
}

}  // namespace
}  // namespace ahg::obs
